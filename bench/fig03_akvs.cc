/**
 * Figure 3 — Aggregated key-value tuples per second (AKV/s) on a single
 * machine: (a) vanilla Spark vs CPU cores, (b) the strawman in-network
 * aggregation (one tuple per packet) vs cores, (c) ASK (vectorized) vs
 * data channels. Paper headlines: strawman hits 100 Gbps line rate with
 * 16 cores and peaks at 3.4x Spark; ASK reaches up to 155x Spark at a
 * matched small-core budget.
 */
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "ask/cluster.h"
#include "baselines/strawman.h"
#include "bench_util.h"
#include "common/logging.h"
#include "net/cost_model.h"
#include "workload/generators.h"

namespace {

using namespace ask;

/** Run an ASK/strawman aggregation and return AKV/s. The stream is
 *  split into one task per data channel (each task binds to one
 *  channel, so this is how a single job saturates several cores). */
double
measure_akvs(core::ClusterConfig cc, std::uint64_t tuples,
             std::uint64_t distinct)
{
    core::AskCluster cluster(cc);
    std::uint32_t parts = std::min(2 * cc.ask.channels_per_host,
                                   cc.ask.max_tasks);
    std::uint64_t per_part = tuples / parts;
    std::uint64_t keys_per_part = std::max<std::uint64_t>(1, distinct / parts);
    std::uint32_t region = cc.ask.copy_size() / parts;

    // Task ids chosen so the sender's hash load balancing is even.
    std::vector<std::uint32_t> ids =
        bench::balanced_task_ids(1, cc.ask.channels_per_host, parts);
    std::vector<bench::StreamingTask> tasks;
    const core::KeySpace& ks = cluster.daemon(1).key_space();
    std::uint32_t keys_per_slot = std::max<std::uint64_t>(
        1, keys_per_part / cc.ask.short_aas());
    for (std::uint32_t p = 0; p < parts; ++p) {
        tasks.push_back(
            {ids[p], 0,
             {{1, bench::balanced_uniform_stream(
                      ks, keys_per_slot, per_part,
                      p * (keys_per_part + 1))}},
             {.region_len = region}});
    }
    // Throughput is measured to the point all senders finished (their
    // data ACKed), matching the paper's sender-side metric; setup
    // latency is subtracted.
    bench::StreamingResult r = bench::run_streaming_tasks(cluster,
                                                          std::move(tasks));
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    return static_cast<double>(per_part * parts) /
           units::to_seconds(std::max<Nanoseconds>(r.senders_done - fixed, 1));
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "fig03_akvs", "single-machine AKV/s: Spark vs strawman INA vs ASK",
        argc, argv);
    bool full = report.full();
    std::uint64_t tuples = report.smoke() ? 300000 : (full ? 8000000 : 1500000);
    std::uint64_t distinct = 1 << 14;
    report.param("tuples", tuples);
    report.param("distinct_keys", distinct);

    bench::banner("Figure 3", "single-machine AKV/s: Spark vs strawman INA vs ASK");

    // (a) Vanilla Spark: the calibrated curve (JVM aggregation path).
    TextTable spark;
    spark.header({"cores", "Spark AKV/s"});
    for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u, 56u}) {
        spark.row({std::to_string(c), fmt_count(net::spark_akvs(c))});
        report.row({{"series", "spark"},
                    {"cores", c},
                    {"akvs", net::spark_akvs(c)}});
    }
    std::cout << "\n(a) vanilla Spark\n";
    spark.print(std::cout);

    // (b) Strawman INA: one 8-byte tuple per packet through the switch.
    std::cout << "\n(b) strawman in-network aggregation (1 tuple/packet)\n";
    TextTable straw;
    straw.header({"cores", "AKV/s", "vs Spark same cores"});
    double straw16 = 0;
    for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u}) {
        core::ClusterConfig cc =
            baselines::strawman_cluster(2, c, static_cast<std::uint32_t>(distinct));
        double akvs = measure_akvs(cc, tuples / 4, distinct);
        if (c == 16)
            straw16 = akvs;
        straw.row({std::to_string(c), fmt_count(akvs),
                   fmt_double(akvs / net::spark_akvs(c), 1) + "x"});
        report.row({{"series", "strawman"},
                    {"cores", c},
                    {"akvs", akvs},
                    {"vs_spark", akvs / net::spark_akvs(c)}});
    }
    straw.print(std::cout);
    report.note("paper: strawman ~5x Spark at 16 cores; line rate = 145M AKV/s");
    std::cout << "measured strawman(16)/Spark(16) = "
              << fmt_double(straw16 / net::spark_akvs(16), 2) << "x (paper ~5x)\n";

    // (c) ASK: 32-tuple vectorized packets.
    std::cout << "\n(c) ASK (vectorized, 32 tuples/packet)\n";
    TextTable askt;
    askt.header({"data channels", "AKV/s", "vs Spark same cores"});
    double ask4 = 0;
    for (std::uint32_t ch : {1u, 2u, 4u}) {
        core::ClusterConfig cc;
        cc.num_hosts = 2;
        cc.ask.max_hosts = 2;
        cc.ask.channels_per_host = ch;
        cc.ask.medium_groups = 0;  // 4-byte uniform keys: all AAs short
        cc.ask.swap_threshold_packets = 0;
        double akvs = measure_akvs(cc, tuples, distinct);
        if (ch == 4)
            ask4 = akvs;
        askt.row({std::to_string(ch), fmt_count(akvs),
                  fmt_double(akvs / net::spark_akvs(ch), 1) + "x"});
        report.row({{"series", "ask"},
                    {"channels", ch},
                    {"akvs", akvs},
                    {"vs_spark", akvs / net::spark_akvs(ch)}});
    }
    askt.print(std::cout);
    std::cout << "measured ASK(4 dCh)/Spark(4 cores) = "
              << fmt_double(ask4 / net::spark_akvs(4), 0)
              << "x (paper: up to 155x)\n";
    return 0;
}
