/**
 * Chaos sweep — aggregation-task completion time and exactness under
 * escalating fault injection: randomized link episodes of growing
 * density, a mid-task switch reboot, host and controller crashes
 * recovered from the write-ahead log, and a permanently sick data plane
 * (degraded host-side aggregation). Not a paper figure: this quantifies
 * the robustness machinery's cost — recovery is worth little if it is
 * exact but ruinously slow.
 */
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "sim/chaos.h"

namespace {

using namespace ask;
using core::AggregateMap;
using core::AskCluster;
using core::ClusterConfig;
using core::KvStream;
using core::StreamSpec;
using core::TaskResult;

KvStream
sweep_stream(Rng& rng, std::size_t n)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(400);
        std::size_t len = 1 + id % 12;
        std::string key;
        std::uint64_t x = mix64(id + 1);
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + (x >> (5 * (j % 12))) % 26));
        s.push_back({key, static_cast<core::Value>(1 + id % 9)});
    }
    return s;
}

ClusterConfig
sweep_config()
{
    ClusterConfig cc;
    cc.num_hosts = 4;
    cc.ask.max_hosts = 4;
    cc.ask.aggregators_per_aa = 512;
    cc.ask.swap_threshold_packets = 64;
    cc.faults = net::FaultSpec::lossy(0.01, 0.005, 0.05);
    // Chaos episodes stack loss windows on an already lossy fabric; a
    // generous budget keeps transient episodes from tripping the
    // degraded-mode detector meant for a *dead* switch path.
    cc.ask.max_data_tries = 200;
    cc.seed = 7;
    return cc;
}

struct RowResult
{
    sim::SimTime jct = 0;
    bool exact = false;
    core::ChaosStats stats;
    std::uint64_t retransmissions = 0;
    obs::Json metrics;
};

RowResult
run_one(const sim::ChaosPlan& plan, const std::vector<StreamSpec>& streams,
        const AggregateMap& truth)
{
    AskCluster cluster(sweep_config());
    // Periodic time-series sampling of goodput, core occupancy, the
    // switch aggregation ratio, and the congestion state; the resulting
    // snapshot rides along in the JSON report.
    cluster.enable_sampling(100 * units::kMicrosecond);
    if (!plan.empty())
        cluster.arm_chaos(plan);
    TaskResult r = cluster.run_task(1, 0, streams);
    RowResult out;
    out.jct = r.ok() ? r.report.finish_time : 0;
    out.exact = r.ok() && r.result == truth;
    out.stats = cluster.chaos_stats();
    out.retransmissions = cluster.total_host_stats().retransmissions;
    out.metrics = cluster.metrics_snapshot().to_json();
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "chaos_sweep",
        "task completion vs fault-episode density under chaos injection",
        argc, argv);
    bool full = report.full();

    bench::banner("Chaos sweep",
                  "task completion vs fault-episode density (exactness must "
                  "hold in every row)");

    std::size_t n = report.smoke() ? 4000 : (full ? 60000 : 12000);
    report.param("tuples_per_sender", std::uint64_t{n});
    report.param("senders", 3);
    Rng rng = seeded_rng("chaos_sweep", 7);
    std::vector<StreamSpec> streams{{1, sweep_stream(rng, n)},
                                    {2, sweep_stream(rng, n)},
                                    {3, sweep_stream(rng, n)}};
    AggregateMap truth;
    for (const auto& s : streams)
        core::aggregate_into(truth, s.stream, core::AggOp::kAdd);

    RowResult base = run_one(sim::ChaosPlan{}, streams, truth);
    sim::SimTime horizon = base.jct * 2;

    TextTable t;
    t.header({"scenario", "JCT (ms)", "slowdown", "retx", "replays",
              "degraded", "exact"});
    auto add_row = [&](const std::string& name, const RowResult& r) {
        t.row({name,
               fmt_double(static_cast<double>(r.jct) / units::kMillisecond,
                          2),
               fmt_double(base.jct
                              ? static_cast<double>(r.jct) /
                                    static_cast<double>(base.jct)
                              : 0.0,
                          2),
               std::to_string(r.retransmissions),
               std::to_string(r.stats.streams_replayed),
               std::to_string(r.stats.degraded_entries),
               r.exact ? "yes" : "NO"});
        report.row({{"scenario", name},
                    {"jct_ms",
                     static_cast<double>(r.jct) / units::kMillisecond},
                    {"slowdown", base.jct
                                     ? static_cast<double>(r.jct) /
                                           static_cast<double>(base.jct)
                                     : 0.0},
                    {"retransmissions", r.retransmissions},
                    {"streams_replayed", r.stats.streams_replayed},
                    {"degraded_entries", r.stats.degraded_entries},
                    {"exact", r.exact}});
    };
    add_row("no chaos", base);

    for (std::uint32_t episodes : {4u, 8u, 16u, 32u}) {
        sim::ChaosPlan plan = sim::ChaosPlan::randomized(
            /*seed=*/100 + episodes, horizon, episodes, /*num_hosts=*/4,
            /*mean_duration=*/200 * units::kMicrosecond, /*intensity=*/0.5);
        add_row(strf("%u link episodes", episodes),
                run_one(plan, streams, truth));
    }

    {
        sim::ChaosPlan plan;
        plan.switch_reboot(base.jct / 2, 300 * units::kMicrosecond);
        add_row("switch reboot mid-task", run_one(plan, streams, truth));
    }
    {
        sim::ChaosPlan plan;
        plan.switch_reboot(base.jct / 3, 300 * units::kMicrosecond);
        plan.switch_reboot(2 * base.jct / 3, 300 * units::kMicrosecond);
        add_row("two switch reboots", run_one(plan, streams, truth));
    }
    // ---- host-crash axis: WAL recovery cost by crashed role -------------
    {
        sim::ChaosPlan plan;
        plan.host_crash(base.jct / 2, 300 * units::kMicrosecond,
                        /*host=*/0);  // the receiver
        add_row("receiver crash mid-task", run_one(plan, streams, truth));
    }
    {
        sim::ChaosPlan plan;
        plan.host_crash(base.jct / 2, 300 * units::kMicrosecond,
                        /*host=*/1);  // a sender: full replay reset
        add_row("sender crash mid-task", run_one(plan, streams, truth));
    }
    {
        sim::ChaosPlan plan;
        plan.host_crash(base.jct / 3, 250 * units::kMicrosecond, /*host=*/1);
        plan.host_crash(2 * base.jct / 3, 250 * units::kMicrosecond,
                        /*host=*/0);
        add_row("sender then receiver crash", run_one(plan, streams, truth));
    }
    {
        sim::ChaosPlan plan;
        plan.controller_crash(base.jct / 2, 500 * units::kMicrosecond);
        add_row("controller crash mid-task", run_one(plan, streams, truth));
    }
    {
        sim::ChaosPlan plan;
        plan.controller_crash(base.jct / 3, 400 * units::kMicrosecond);
        plan.controller_crash(2 * base.jct / 3, 400 * units::kMicrosecond);
        add_row("two controller crashes", run_one(plan, streams, truth));
    }

    {
        sim::ChaosPlan plan;
        plan.data_blackhole(0, 3600UL * units::kSecond);
        // The dead path should be detected fast, not after 200 tries.
        ClusterConfig cc = sweep_config();
        cc.ask.max_data_tries = 8;
        AskCluster cluster(cc);
        cluster.arm_chaos(plan);
        TaskResult r = cluster.run_task(1, 0, streams);
        RowResult row;
        row.jct = r.ok() ? r.report.finish_time : 0;
        row.exact = r.ok() && r.result == truth;
        row.stats = cluster.chaos_stats();
        row.retransmissions = cluster.total_host_stats().retransmissions;
        add_row("sick data plane (degraded)", row);
    }

    t.print(std::cout);
    report.metrics(base.metrics);
    report.note("recovery cost: link episodes cost retransmissions, a "
                "reboot costs a drain window plus a full replay, a host "
                "crash costs a WAL rebuild (plus a cluster-wide replay "
                "reset when a sender died mid-stream), and the degraded "
                "mode trades the switch's aggregation for host-side "
                "exactness");
    return 0;
}
