/**
 * Figure 13(b) — Scalability: average per-sender throughput as sending
 * hosts grow from 1 to 8 against one receiver. Paper: ASK stays flat
 * (~92.61 Gbps x 8 — the switch absorbs and ACKs most traffic, so the
 * receiver link never bottlenecks), while NoAggr decays as 1/n
 * (11.88 Gbps per sender at 8).
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "baselines/noaggr.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/generators.h"

namespace {

using namespace ask;

double
ask_per_sender_gbps(std::uint32_t senders, std::uint64_t tuples_per_sender)
{
    core::ClusterConfig cc;
    cc.num_hosts = senders + 1;
    cc.ask.max_hosts = cc.num_hosts;
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    // Split the job into several tasks so every sender exercises all of
    // its data channels; every task has a stream from every sender.
    std::uint32_t parts = 2 * cc.ask.channels_per_host;
    std::vector<std::uint32_t> sender_hosts;
    for (std::uint32_t s = 1; s <= senders; ++s)
        sender_hosts.push_back(s);
    auto ids = bench::balanced_task_ids_multi(
        sender_hosts, cc.ask.channels_per_host, parts);
    ASK_ASSERT(ids.size() == parts, "could not balance task ids");
    std::uint64_t per_part = tuples_per_sender / parts;
    std::vector<bench::StreamingTask> tasks;
    for (std::uint32_t p = 0; p < parts; ++p) {
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t s = 1; s <= senders; ++s) {
            // All senders share each task's small, slot-balanced key
            // space, as in the paper's scalability microbenchmark: the
            // aggregator load factor stays tiny (almost every packet is
            // fully absorbed, so the receiver link never bottlenecks)
            // and every packet is full. A stolen key would forward every
            // packet containing it — vectorization amplifies collisions
            // (see EXPERIMENTS.md) — so low load matters here.
            const core::KeySpace& ks = cluster.daemon(s).key_space();
            streams.push_back({s, bench::balanced_uniform_stream(
                                      ks, 2, per_part,
                                      static_cast<std::uint64_t>(p) << 16)});
        }
        tasks.push_back({ids[p], 0, std::move(streams),
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds elapsed = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    double total_tuple_bytes =
        static_cast<double>(per_part) * parts * senders * 8.0;
    return units::gbps(total_tuple_bytes, elapsed) / senders;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "fig13b_scalability", "average per-sender goodput vs number of senders",
        argc, argv);
    bool full = report.full();
    std::uint64_t tuples = report.smoke() ? 300000 : (full ? 4000000 : 1200000);
    std::uint64_t noaggr_tuples =
        report.smoke() ? 150000 : (full ? 2000000 : 600000);
    report.param("ask_tuples_per_sender", tuples);
    report.param("noaggr_tuples_per_sender", noaggr_tuples);

    bench::banner("Figure 13(b)",
                  "average per-sender goodput vs number of senders");

    TextTable t;
    t.header({"senders", "ASK (Gbps/sender)", "NoAggr (Gbps/sender)",
              "NoAggr ideal 95/n"});
    for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
        baselines::BulkSpec spec;
        spec.num_senders = n;
        spec.tuples_per_sender = noaggr_tuples;
        baselines::BulkResult nr = baselines::run_noaggr(spec);
        double ask = ask_per_sender_gbps(n, tuples);
        t.row({std::to_string(n), fmt_double(ask, 2),
               fmt_double(nr.per_sender_goodput_gbps, 2),
               fmt_double(94.9 / n, 2)});
        report.row({{"senders", n},
                    {"ask_gbps_per_sender", ask},
                    {"noaggr_gbps_per_sender", nr.per_sender_goodput_gbps},
                    {"noaggr_ideal_gbps_per_sender", 94.9 / n}});
    }
    t.print(std::cout);
    report.note("paper: ASK flat (~92.61 Gbps per sender up to 8 senders); "
                "NoAggr 11.88 Gbps per sender at 8 (receiver link bound)");
    return 0;
}
