/**
 * Figure 13(b) — Scalability, in two sweeps.
 *
 * Senders sweep (the paper's axis): average per-sender throughput as
 * sending hosts grow from 1 to 8 against one receiver on a single
 * switch. Paper: ASK stays flat (~92.61 Gbps x 8 — the switch absorbs
 * and ACKs most traffic, so the receiver link never bottlenecks),
 * while NoAggr decays as 1/n (11.88 Gbps per sender at 8).
 *
 * Fabric sweep (this repo's multi-switch extension): aggregate goodput
 * as the topology grows from one rack to eight racks of two hosts
 * under a shared aggregation tier. Each rack's ToR shards its own
 * hosts' channels, so per-ToR reliability state stays bounded by rack
 * size while aggregate goodput scales with sender count; the tier —
 * the tree root holding the full channel range — is reported
 * separately. Flags: --racks N pins the fabric sweep to one rack
 * count; --switches N asks for a total switch budget instead (N-1
 * racks plus the tier; 1 means the classic single switch).
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <vector>

#include "ask/cluster.h"
#include "baselines/noaggr.h"
#include "bench_util.h"
#include "common/logging.h"
#include "sim/engine.h"
#include "workload/generators.h"

namespace {

using namespace ask;

/** Fixed rack width of the fabric sweep: receiver + senders. */
constexpr std::uint32_t kHostsPerRack = 2;

double
ask_per_sender_gbps(std::uint32_t senders, std::uint64_t tuples_per_sender)
{
    core::ClusterConfig cc;
    cc.num_hosts = senders + 1;
    cc.ask.max_hosts = cc.num_hosts;
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    // Split the job into several tasks so every sender exercises all of
    // its data channels; every task has a stream from every sender.
    std::uint32_t parts = 2 * cc.ask.channels_per_host;
    std::vector<std::uint32_t> sender_hosts;
    for (std::uint32_t s = 1; s <= senders; ++s)
        sender_hosts.push_back(s);
    auto ids = bench::balanced_task_ids_multi(
        sender_hosts, cc.ask.channels_per_host, parts);
    ASK_ASSERT(ids.size() == parts, "could not balance task ids");
    std::uint64_t per_part = tuples_per_sender / parts;
    std::vector<bench::StreamingTask> tasks;
    for (std::uint32_t p = 0; p < parts; ++p) {
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t s = 1; s <= senders; ++s) {
            // All senders share each task's small, slot-balanced key
            // space, as in the paper's scalability microbenchmark: the
            // aggregator load factor stays tiny (almost every packet is
            // fully absorbed, so the receiver link never bottlenecks)
            // and every packet is full. A stolen key would forward every
            // packet containing it — vectorization amplifies collisions
            // (see EXPERIMENTS.md) — so low load matters here.
            const core::KeySpace& ks = cluster.daemon(s).key_space();
            streams.push_back({s, bench::balanced_uniform_stream(
                                      ks, 2, per_part,
                                      static_cast<std::uint64_t>(p) << 16)});
        }
        tasks.push_back({ids[p], 0, std::move(streams),
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds elapsed = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    double total_tuple_bytes =
        static_cast<double>(per_part) * parts * senders * 8.0;
    return units::gbps(total_tuple_bytes, elapsed) / senders;
}

/** One measured point of the fabric sweep. */
struct FabricPoint
{
    std::uint32_t racks = 0;
    std::uint32_t switches = 0;
    std::uint32_t senders = 0;
    double goodput_gbps = 0.0;       ///< aggregate across all senders
    double gbps_per_sender = 0.0;
    std::uint64_t tor_state_bits = 0;   ///< max over ToRs (bounded by rack)
    std::uint64_t tier_state_bits = 0;  ///< tree root; 0 without a tier
};

FabricPoint
fabric_goodput(std::uint32_t racks, std::uint64_t tuples_per_sender)
{
    core::ClusterConfig cc;
    cc.topology = core::TopologyBuilder().racks(racks, kHostsPerRack).build();
    cc.ask.max_hosts = cc.topology->num_hosts();
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    FabricPoint pt;
    pt.racks = racks;
    pt.switches = cluster.num_switches();
    pt.senders = cc.topology->num_hosts() - 1;

    // Host 0 receives; every other host in every rack streams to it.
    // Cross-rack flows are absorbed rack-locally at each ToR and their
    // residuals die at the tier, so each sender's edge link — not the
    // receiver's — stays the limiting resource.
    std::uint32_t parts = 2 * cc.ask.channels_per_host;
    std::vector<std::uint32_t> sender_hosts;
    for (std::uint32_t s = 1; s <= pt.senders; ++s)
        sender_hosts.push_back(s);
    // Exact simultaneous channel balance over many hosts may be
    // infeasible; widen the per-channel cap until an id set exists.
    // The hosts' edge links, not the channel split, bound throughput,
    // so a one-task skew costs little.
    std::vector<std::uint32_t> ids;
    for (std::uint32_t slack = 0; ids.size() != parts && slack <= 3; ++slack)
        ids = bench::balanced_task_ids_multi(
            sender_hosts, cc.ask.channels_per_host, parts, slack);
    ASK_ASSERT(ids.size() == parts, "could not balance task ids");
    std::uint64_t per_part = tuples_per_sender / parts;
    std::vector<bench::StreamingTask> tasks;
    for (std::uint32_t p = 0; p < parts; ++p) {
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t s : sender_hosts) {
            const core::KeySpace& ks = cluster.daemon(s).key_space();
            streams.push_back({s, bench::balanced_uniform_stream(
                                      ks, 2, per_part,
                                      static_cast<std::uint64_t>(p) << 16)});
        }
        tasks.push_back({ids[p], 0, std::move(streams),
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds elapsed = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    double total_tuple_bytes =
        static_cast<double>(per_part) * parts * pt.senders * 8.0;
    pt.goodput_gbps = units::gbps(total_tuple_bytes, elapsed);
    pt.gbps_per_sender = pt.goodput_gbps / pt.senders;

    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
        std::uint64_t bits =
            cluster.program(core::SwitchId{s}).reliability_state_bits();
        if (cc.topology->has_tier() &&
            core::SwitchId{s} == cc.topology->tier_switch())
            pt.tier_state_bits = bits;
        else
            pt.tor_state_bits = std::max(pt.tor_state_bits, bits);
    }
    return pt;
}

void
print_usage()
{
    std::cout
        << "usage: fig13b_scalability [--smoke|--full] [--racks N] "
           "[--switches N]\n"
           "  --smoke       CI-scale volumes (seconds), same shape\n"
           "  --full        paper-scale volumes (slower)\n"
           "  --racks N     pin the fabric sweep to N racks of "
        << kHostsPerRack
        << " hosts\n"
           "  --switches N  pin by total switch count instead: N-1 racks\n"
           "                plus the aggregation tier (1 = single switch)\n"
           "  --help        this text\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    std::uint32_t racks_override = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            print_usage();
            return 0;
        }
        if (std::strcmp(argv[i], "--racks") == 0 && i + 1 < argc) {
            racks_override =
                static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--switches") == 0 && i + 1 < argc) {
            auto switches =
                static_cast<std::uint32_t>(std::atoi(argv[++i]));
            // A lone switch is the rackless classic; otherwise one
            // switch is the tier and the rest are ToRs. Two switches
            // cannot form a tree (a tier needs >=2 ToRs below it).
            if (switches == 2) {
                std::cerr << "fig13b_scalability: --switches 2 has no tree "
                             "shape (1 ToR + tier is pointless); use "
                             "--switches 1 or >= 3\n";
                return 2;
            }
            racks_override = switches <= 1 ? 1 : switches - 1;
        }
    }
    if (racks_override > 64) {
        std::cerr << "fig13b_scalability: refusing > 64 racks\n";
        return 2;
    }

    bench::BenchReport report(
        "fig13b_scalability",
        "goodput scaling: per-sender vs sender count, aggregate vs fabric "
        "size",
        argc, argv);
    bool full = report.full();
    std::uint64_t tuples = report.smoke() ? 300000 : (full ? 4000000 : 1200000);
    std::uint64_t noaggr_tuples =
        report.smoke() ? 150000 : (full ? 2000000 : 600000);
    std::uint64_t fabric_tuples =
        report.smoke() ? 120000 : (full ? 2000000 : 600000);
    report.param("ask_tuples_per_sender", tuples);
    report.param("noaggr_tuples_per_sender", noaggr_tuples);
    report.param("fabric_tuples_per_sender", fabric_tuples);
    report.param("fabric_hosts_per_rack", kHostsPerRack);

    // Every sweep point below — (senders, NoAggr) pairs and fabric
    // sizes — is an independent replica simulation (its own cluster,
    // simulator, and streams), so both sweeps fan their points out
    // over ASK_SIM_THREADS engine workers and emit rows in sweep order
    // afterwards: the table and report bytes are identical at any
    // thread count (held by the sim_parallel_ab ctest's fuzz/bench
    // A/B diffs and measured by the sim_parallel bench).
    sim::ParallelEngine engine;

    if (racks_override == 0) {
        bench::banner("Figure 13(b)",
                      "average per-sender goodput vs number of senders");

        TextTable t;
        t.header({"senders", "ASK (Gbps/sender)", "NoAggr (Gbps/sender)",
                  "NoAggr ideal 95/n"});
        const std::vector<std::uint32_t> sender_counts = {1, 2, 4, 8};
        std::vector<double> ask_gbps(sender_counts.size());
        std::vector<baselines::BulkResult> noaggr(sender_counts.size());
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < sender_counts.size(); ++i) {
            jobs.push_back([&, i] {
                baselines::BulkSpec spec;
                spec.num_senders = sender_counts[i];
                spec.tuples_per_sender = noaggr_tuples;
                noaggr[i] = baselines::run_noaggr(spec);
                ask_gbps[i] = ask_per_sender_gbps(sender_counts[i], tuples);
            });
        }
        engine.run_isolated(jobs);
        for (std::size_t i = 0; i < sender_counts.size(); ++i) {
            std::uint32_t n = sender_counts[i];
            t.row({std::to_string(n), fmt_double(ask_gbps[i], 2),
                   fmt_double(noaggr[i].per_sender_goodput_gbps, 2),
                   fmt_double(94.9 / n, 2)});
            report.row({{"senders", n},
                        {"ask_gbps_per_sender", ask_gbps[i]},
                        {"noaggr_gbps_per_sender",
                         noaggr[i].per_sender_goodput_gbps},
                        {"noaggr_ideal_gbps_per_sender", 94.9 / n}});
        }
        t.print(std::cout);
        report.note(
            "paper: ASK flat (~92.61 Gbps per sender up to 8 senders); "
            "NoAggr 11.88 Gbps per sender at 8 (receiver link bound)");
    }

    bench::banner("Fabric scalability",
                  "aggregate goodput and per-switch state vs fabric size");

    std::vector<std::uint32_t> rack_counts = {1, 2, 4, 8};
    if (racks_override != 0)
        rack_counts = {racks_override};

    TextTable ft;
    ft.header({"racks", "switches", "senders", "goodput (Gbps)",
               "Gbps/sender", "ToR state (bits)", "tier state (bits)"});
    std::vector<FabricPoint> points(rack_counts.size());
    std::vector<std::function<void()>> fabric_jobs;
    for (std::size_t i = 0; i < rack_counts.size(); ++i) {
        fabric_jobs.push_back([&, i] {
            points[i] = fabric_goodput(rack_counts[i], fabric_tuples);
        });
    }
    engine.run_isolated(fabric_jobs);
    for (const FabricPoint& pt : points) {
        ft.row({std::to_string(pt.racks), std::to_string(pt.switches),
                std::to_string(pt.senders), fmt_double(pt.goodput_gbps, 2),
                fmt_double(pt.gbps_per_sender, 2),
                std::to_string(pt.tor_state_bits),
                std::to_string(pt.tier_state_bits)});
        report.row({{"racks", pt.racks},
                    {"switches", pt.switches},
                    {"fabric_senders", pt.senders},
                    {"goodput_gbps", pt.goodput_gbps},
                    {"fabric_gbps_per_sender", pt.gbps_per_sender},
                    {"tor_state_bits", pt.tor_state_bits},
                    {"tier_state_bits", pt.tier_state_bits}});
    }
    ft.print(std::cout);
    report.note(
        "fabric: ToR reliability state is bounded by its own rack "
        "(constant as racks grow); only the tier — the tree root — "
        "scales with the whole fabric, and aggregate goodput grows "
        "with sender count because residuals die at the tier instead "
        "of converging on the receiver link");
    return 0;
}
