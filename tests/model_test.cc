/**
 * @file
 * The semantic model checker's own test suite: clean automata verify
 * exhaustively, every seeded mutant yields a counterexample that
 * replays and is 1-minimal, golden traces and the ask-model/v1 report
 * are byte-stable, and the state invariants shared with the fuzzer's
 * reachability probe hold on live window objects.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ask/seen_window.h"
#include "pisa/model/channel_model.h"
#include "pisa/model/checker.h"
#include "pisa/model/invariants.h"
#include "pisa/model/routing_model.h"

namespace ask {
namespace {

using pisa::model::ChannelBounds;
using pisa::model::ChannelModel;
using pisa::model::Counterexample;
using pisa::model::ExploreOptions;
using pisa::model::ExploreResult;
using pisa::model::Mutation;
using pisa::model::RoutingBounds;
using pisa::model::RoutingModel;
using pisa::model::Trace;

// ---- clean verification ---------------------------------------------------

TEST(ModelChannel, CleanVerifiesExhaustively)
{
    // net_capacity 2 keeps the space test-sized (~200k states) while
    // still allowing concurrent DATA+ACK / DATA+DATA interleavings; the
    // full net_capacity=3 space is covered by the model_smoke ctest.
    for (core::ReduceOp op : {core::ReduceOp::kAdd, core::ReduceOp::kCount,
                              core::ReduceOp::kMax}) {
        ChannelBounds bounds;
        bounds.net_capacity = 2;
        bounds.op = op;
        ChannelModel model(bounds, Mutation::kNone);
        ExploreResult result = pisa::model::explore(model);
        EXPECT_FALSE(result.truncated)
            << core::reduce_op_name(op) << ": raise max_states";
        EXPECT_FALSE(result.counterexample.has_value())
            << core::reduce_op_name(op) << ": "
            << result.counterexample->violation.property << ": "
            << result.counterexample->violation.message;
        EXPECT_GT(result.states, 100000u);
    }
}

TEST(ModelRouting, CleanVerifiesExhaustively)
{
    for (std::uint32_t racks : {1u, 2u}) {
        RoutingBounds bounds;
        bounds.racks = racks;
        RoutingModel model(bounds, Mutation::kNone);
        ExploreResult result = pisa::model::explore(model);
        EXPECT_FALSE(result.truncated);
        EXPECT_FALSE(result.counterexample.has_value())
            << "racks=" << racks << ": "
            << result.counterexample->violation.property << ": "
            << result.counterexample->violation.message;
    }
}

// ---- mutation harness -----------------------------------------------------

/** Explore one mutant under the configuration designed to expose it. */
ExploreResult
explore_mutant(Mutation m)
{
    if (pisa::model::mutation_is_routing(m)) {
        RoutingBounds bounds;  // racks=2: the fabric has a tier switch
        RoutingModel model(bounds, m);
        return pisa::model::explore(model);
    }
    ChannelBounds bounds;
    // Under kAdd a re-lift is the identity; kCount exposes it.
    bounds.op = m == Mutation::kDoubleLiftCount ? core::ReduceOp::kCount
                                                : core::ReduceOp::kAdd;
    ChannelModel model(bounds, m);
    return pisa::model::explore(model);
}

/** Replay `trace` on the mutant's model; nullopt when it finishes
 *  clean or requests a disabled event. */
std::optional<pisa::model::PropertyViolation>
replay_mutant(Mutation m, const Trace& trace)
{
    if (pisa::model::mutation_is_routing(m)) {
        RoutingModel model(RoutingBounds{}, m);
        return pisa::model::run_trace(model, trace);
    }
    ChannelBounds bounds;
    bounds.op = m == Mutation::kDoubleLiftCount ? core::ReduceOp::kCount
                                                : core::ReduceOp::kAdd;
    ChannelModel model(bounds, m);
    return pisa::model::run_trace(model, trace);
}

TEST(ModelMutants, EveryMutantYieldsAReplayableCounterexample)
{
    std::vector<Mutation> mutants = pisa::model::all_mutations();
    ASSERT_GE(mutants.size(), 10u);  // the harness floor
    for (Mutation m : mutants) {
        ExploreResult result = explore_mutant(m);
        ASSERT_TRUE(result.counterexample.has_value())
            << pisa::model::mutation_name(m) << " was not caught";
        const Counterexample& cex = *result.counterexample;
        EXPECT_FALSE(cex.trace.empty() &&
                     cex.violation.property.empty())
            << pisa::model::mutation_name(m);
        // The reported trace must actually reproduce the violation.
        auto replayed = replay_mutant(m, cex.trace);
        ASSERT_TRUE(replayed.has_value())
            << pisa::model::mutation_name(m)
            << ": counterexample does not replay";
        EXPECT_EQ(replayed->property, cex.violation.property)
            << pisa::model::mutation_name(m);
    }
}

TEST(ModelMutants, CounterexamplesAreOneMinimal)
{
    // The shrink discipline's fixpoint guarantee: no single event can
    // be deleted from a reported trace and still violate.
    for (Mutation m : {Mutation::kDuplicateConsumes,
                       Mutation::kAckWithoutConsume,
                       Mutation::kTorConsumesResidual}) {
        ExploreResult result = explore_mutant(m);
        ASSERT_TRUE(result.counterexample.has_value());
        const Trace& trace = result.counterexample->trace;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            Trace candidate;
            for (std::size_t j = 0; j < trace.size(); ++j)
                if (j != i)
                    candidate.push_back(trace[j]);
            EXPECT_FALSE(replay_mutant(m, candidate).has_value())
                << pisa::model::mutation_name(m)
                << ": still violates without event " << i;
        }
    }
}

// ---- golden counterexample traces -----------------------------------------
// BFS order, state encodings, and the shrink pass are all
// deterministic, so these exact traces are part of the ask-model/v1
// report contract. A change here means the exploration order changed —
// bump the schema if that is intentional.

TEST(ModelGolden, DuplicateConsumesTrace)
{
    ExploreResult result = explore_mutant(Mutation::kDuplicateConsumes);
    ASSERT_TRUE(result.counterexample.has_value());
    const Counterexample& cex = *result.counterexample;
    EXPECT_EQ(cex.violation.property, "exactly-once");
    EXPECT_EQ(cex.violation.message, "payload 0 merged 2 times");
    std::vector<std::string> expected = {
        "send(p0 seq0)",
        "retransmit(p0 seq0)",
        "deliver(data p0 seq0)",
        "deliver(data p0 seq0)",
    };
    EXPECT_EQ(cex.rendered, expected);
}

TEST(ModelGolden, TorConsumesResidualTrace)
{
    ExploreResult result = explore_mutant(Mutation::kTorConsumesResidual);
    ASSERT_TRUE(result.counterexample.has_value());
    const Counterexample& cex = *result.counterexample;
    EXPECT_EQ(cex.violation.property, "routing-soundness");
    EXPECT_EQ(cex.violation.message, "channel 0 seq 0 consumed 2 times");
    std::vector<std::string> expected = {
        "send(ch0 seq0)",
        "retransmit(ch0 seq0)",
        "deliver(ch0 seq0 at tor)",
        "deliver(ch0 seq0 at tor)",
        "deliver(ch0 seq0 at tier)",
    };
    EXPECT_EQ(cex.rendered, expected);
}

// ---- report schema and determinism ----------------------------------------

TEST(ModelReport, ByteStableAndAllMutantsCaught)
{
    // Truncate the clean explorations: determinism and schema shape are
    // under test here, exhaustiveness is model_smoke's job. Every
    // mutant is caught well inside this bound.
    pisa::model::ModelCheckOptions options;
    options.max_states = 30000;

    pisa::model::ModelReport first = pisa::model::run_model_check(options);
    pisa::model::ModelReport second = pisa::model::run_model_check(options);
    EXPECT_TRUE(first.ok());
    EXPECT_EQ(first.to_json().dump(2), second.to_json().dump(2));

    obs::Json j = first.to_json();
    ASSERT_NE(j.find("schema"), nullptr);
    EXPECT_EQ(j.find("schema")->as_string(), "ask-model/v1");
    const obs::Json* summary = j.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("mutants")->as_int(), 14);
    EXPECT_EQ(summary->find("mutants_caught")->as_int(), 14);
    EXPECT_TRUE(summary->find("ok")->as_bool());
    const obs::Json* runs = j.find("runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->size(), first.runs.size());
    // Every run entry carries the full stats block.
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const obs::Json& r = runs->at(i);
        EXPECT_NE(r.find("automaton"), nullptr);
        EXPECT_NE(r.find("mutation"), nullptr);
        EXPECT_NE(r.find("states"), nullptr);
        EXPECT_NE(r.find("counterexample"), nullptr);
    }
}

// ---- extraction hooks and shared invariants -------------------------------

TEST(ModelInvariants, LiveWindowSnapshotsSatisfyTheModelPredicates)
{
    core::PlainSeen plain(4);
    core::CompactSeen compact(4);
    for (core::Seq s = 0; s < 11; ++s) {
        plain.observe(s);
        compact.observe(s);
        EXPECT_EQ(pisa::model::check_seen_snapshot(plain.snapshot()),
                  std::nullopt)
            << "after seq " << s;
        EXPECT_EQ(pisa::model::check_seen_snapshot(compact.snapshot()),
                  std::nullopt)
            << "after seq " << s;
    }
    // Fence repair lands inside the envelope too.
    plain.wipe();
    plain.repair(11);
    compact.wipe();
    compact.repair(11);
    EXPECT_EQ(pisa::model::check_seen_snapshot(plain.snapshot()),
              std::nullopt);
    EXPECT_EQ(pisa::model::check_seen_snapshot(compact.snapshot()),
              std::nullopt);
}

TEST(ModelInvariants, SnapshotRestoreRoundTrips)
{
    core::PlainSeen a(4);
    for (core::Seq s : {0u, 1u, 3u, 5u, 4u})
        a.observe(s);
    core::PlainSeen b(4);
    b.restore(a.snapshot());
    // Same classification behavior afterwards.
    for (core::Seq s = 0; s < 10; ++s) {
        core::PlainSeen a2(4);
        a2.restore(a.snapshot());
        core::PlainSeen b2(4);
        b2.restore(b.snapshot());
        EXPECT_EQ(a2.observe(s), b2.observe(s)) << "seq " << s;
    }
}

TEST(ModelInvariants, ChannelRelationDirections)
{
    pisa::model::ChannelRelation rel;
    rel.window = 4;
    rel.daemon_next_seq = 10;
    rel.switch_max_seq = 13;  // exactly next_seq + W - 1
    rel.wal_resume = 10;      // exactly the cursor
    EXPECT_EQ(pisa::model::check_channel_relation(rel), std::nullopt);

    rel.switch_max_seq = 14;  // the switch ran ahead of the sender
    EXPECT_NE(pisa::model::check_channel_relation(rel), std::nullopt);

    rel.switch_max_seq = 13;
    rel.wal_resume = 9;  // the cursor ran past the journaled promise
    EXPECT_NE(pisa::model::check_channel_relation(rel), std::nullopt);

    rel.wal_resume = std::nullopt;  // nothing journaled yet: no claim
    EXPECT_EQ(pisa::model::check_channel_relation(rel), std::nullopt);
}

}  // namespace
}  // namespace ask
