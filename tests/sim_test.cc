/** Unit tests for the discrete-event simulation kernel. */
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ask::sim {
namespace {

TEST(Simulator, StartsAtZero)
{
    Simulator s;
    EXPECT_EQ(s.now(), 0);
    EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule_at(30, [&] { order.push_back(3); });
    s.schedule_at(10, [&] { order.push_back(1); });
    s.schedule_at(20, [&] { order.push_back(2); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, FifoAmongEqualTimestamps)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        s.schedule_at(10, [&order, i] { order.push_back(i); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime)
{
    Simulator s;
    SimTime inner_time = -1;
    s.schedule_at(100, [&] {
        s.schedule_after(50, [&] { inner_time = s.now(); });
    });
    s.run();
    EXPECT_EQ(inner_time, 150);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator s;
    bool fired = false;
    EventId id = s.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidIdReturnsFalse)
{
    Simulator s;
    EXPECT_FALSE(s.cancel(kInvalidEvent));
    EXPECT_FALSE(s.cancel(999));
}

TEST(Simulator, DoubleCancelReturnsFalse)
{
    Simulator s;
    EventId id = s.schedule_at(10, [] {});
    EXPECT_TRUE(s.cancel(id));
    EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator s;
    int fired = 0;
    s.schedule_at(10, [&] { ++fired; });
    s.schedule_at(20, [&] { ++fired; });
    s.schedule_at(30, [&] { ++fired; });
    s.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(s.now(), 20);
    s.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesTimeWithEmptyQueue)
{
    Simulator s;
    s.run_until(500);
    EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, StepExecutesOneEvent)
{
    Simulator s;
    int fired = 0;
    s.schedule_at(1, [&] { ++fired; });
    s.schedule_at(2, [&] { ++fired; });
    EXPECT_TRUE(s.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(s.step());
    EXPECT_FALSE(s.step());
}

TEST(Simulator, EventsCanScheduleEvents)
{
    Simulator s;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 10)
            s.schedule_after(5, recurse);
    };
    s.schedule_at(0, recurse);
    s.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(s.now(), 45);
    EXPECT_EQ(s.executed(), 10u);
}

TEST(Simulator, PendingCountsLiveEvents)
{
    Simulator s;
    EventId a = s.schedule_at(10, [] {});
    s.schedule_at(20, [] {});
    EXPECT_EQ(s.pending(), 2u);
    s.cancel(a);
    EXPECT_EQ(s.pending(), 1u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelledEventDoesNotAdvanceClock)
{
    Simulator s;
    EventId far = s.schedule_at(1000, [] {});
    s.schedule_at(10, [] {});
    s.cancel(far);
    s.run();
    EXPECT_EQ(s.now(), 10);
}

}  // namespace
}  // namespace ask::sim
