/**
 * Property tests of the reduction-operator algebra (ask/types.h).
 *
 * The whole aggregation service leans on three algebraic facts about
 * every ReduceOp: the combine is associative and commutative (switch,
 * tier, and host may fold partials in any grouping and order), the
 * lift happens exactly once per observation (kCount), and idempotent
 * ops absorb replay while non-idempotent ops rely on the seen window.
 * These tests pin each fact per operator, plus the fixed-point codec
 * kFloat rides on.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "ask/types.h"
#include "common/random.h"

namespace ask::core {
namespace {

constexpr std::array<ReduceOp, kNumReduceOps> kAllOps = {
    ReduceOp::kAdd, ReduceOp::kMax, ReduceOp::kMin, ReduceOp::kCount,
    ReduceOp::kFloat};

/** Fold a value list left-to-right with the op's combine. */
std::uint64_t
fold(ReduceOp op, const std::vector<std::uint64_t>& values)
{
    AggregateMap m;
    for (std::uint64_t v : values)
        accumulate(m, "k", v, op);
    return m.at("k");
}

TEST(ReduceOpAlgebra, CombineIsCommutative)
{
    Rng rng = seeded_rng("reduce_commute", 1);
    for (ReduceOp op : kAllOps) {
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<std::uint64_t> values;
            std::uint64_t n = 2 + rng.next_below(6);
            for (std::uint64_t i = 0; i < n; ++i)
                values.push_back(rng.next_below(1u << 20));
            std::uint64_t forward = fold(op, values);
            std::reverse(values.begin(), values.end());
            EXPECT_EQ(fold(op, values), forward)
                << reduce_op_name(op) << " trial " << trial;
        }
    }
}

TEST(ReduceOpAlgebra, CombineIsAssociative)
{
    // Host-side merge order must not matter: fold everything directly
    // vs fold per-sender partials and merge the partials — the same
    // self-check the oracle runs, here over every operator.
    Rng rng = seeded_rng("reduce_assoc", 2);
    for (ReduceOp op : kAllOps) {
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<KvStream> senders(1 + rng.next_below(4));
            AggregateMap direct;
            for (auto& s : senders) {
                std::uint64_t n = 1 + rng.next_below(8);
                for (std::uint64_t i = 0; i < n; ++i) {
                    Key key = "k" + std::to_string(rng.next_below(5));
                    auto v = static_cast<Value>(rng.next_below(1u << 20));
                    s.push_back({key, v});
                }
                aggregate_into(direct, s, op);
            }
            AggregateMap merged;
            for (const auto& s : senders) {
                AggregateMap partial;
                aggregate_into(partial, s, op);
                merge_into(merged, partial, op);
            }
            EXPECT_EQ(direct, merged)
                << reduce_op_name(op) << " trial " << trial;
        }
    }
}

TEST(ReduceOpAlgebra, IdentityElementIsNeutral)
{
    // An empty window drains as the identity; combining it with any
    // partial must leave the partial unchanged.
    Rng rng = seeded_rng("reduce_identity", 3);
    for (ReduceOp op : kAllOps) {
        for (int trial = 0; trial < 100; ++trial) {
            auto v = static_cast<Value>(rng.next_u64() & 0xFFFFFFFFu);
            EXPECT_EQ(apply_op(op, reduce_identity(op), v), v)
                << reduce_op_name(op) << " value " << v;
        }
    }
}

TEST(ReduceOpAlgebra, EmptyStreamFoldsToEmptyAggregate)
{
    for (ReduceOp op : kAllOps) {
        AggregateMap m;
        aggregate_into(m, {}, op);
        EXPECT_TRUE(m.empty()) << reduce_op_name(op);
        merge_stream_into(m, {}, op);
        EXPECT_TRUE(m.empty()) << reduce_op_name(op);
    }
}

TEST(ReduceOpAlgebra, IdempotenceMatchesReplayBehaviour)
{
    // min/max absorb a full replay of the stream; sum/count/float must
    // not — that difference is exactly what the seen window exists for.
    EXPECT_TRUE(reduce_op_idempotent(ReduceOp::kMax));
    EXPECT_TRUE(reduce_op_idempotent(ReduceOp::kMin));
    EXPECT_FALSE(reduce_op_idempotent(ReduceOp::kAdd));
    EXPECT_FALSE(reduce_op_idempotent(ReduceOp::kCount));
    EXPECT_FALSE(reduce_op_idempotent(ReduceOp::kFloat));

    KvStream stream = {{"a", 3}, {"b", 7}, {"a", 5}};
    for (ReduceOp op : kAllOps) {
        AggregateMap once;
        aggregate_into(once, stream, op);
        AggregateMap twice;
        aggregate_into(twice, stream, op);
        aggregate_into(twice, stream, op);
        if (reduce_op_idempotent(op))
            EXPECT_EQ(once, twice) << reduce_op_name(op);
        else
            EXPECT_NE(once, twice) << reduce_op_name(op);
    }
}

TEST(ReduceOpAlgebra, CountLiftsEveryObservationToOne)
{
    EXPECT_EQ(reduce_lift(ReduceOp::kCount, 42u), 1u);
    EXPECT_EQ(reduce_lift(ReduceOp::kCount, 0u), 1u);
    EXPECT_EQ(reduce_lift(ReduceOp::kAdd, 42u), 42u);
    EXPECT_EQ(reduce_lift(ReduceOp::kMin, 42u), 42u);

    KvStream stream = {{"a", 9}, {"b", 1}, {"a", 100}, {"a", 3}};
    AggregateMap m;
    aggregate_into(m, stream, ReduceOp::kCount);
    EXPECT_EQ(m.at("a"), 3u);
    EXPECT_EQ(m.at("b"), 1u);

    // merge_stream_into is combine-only: partial counts add, they are
    // not re-lifted to 1.
    AggregateMap merged;
    merge_stream_into(merged, {{"a", 3}}, ReduceOp::kCount);
    merge_stream_into(merged, {{"a", 2}}, ReduceOp::kCount);
    EXPECT_EQ(merged.at("a"), 5u);
}

TEST(ReduceOpAlgebra, NamesParseAndRoundTrip)
{
    for (ReduceOp op : kAllOps) {
        ReduceOp parsed = ReduceOp::kAdd;
        ASSERT_TRUE(parse_reduce_op(reduce_op_name(op), parsed))
            << reduce_op_name(op);
        EXPECT_EQ(parsed, op);
    }
    ReduceOp parsed = ReduceOp::kMax;
    EXPECT_TRUE(parse_reduce_op("add", parsed));  // alias for sum
    EXPECT_EQ(parsed, ReduceOp::kAdd);
    EXPECT_FALSE(parse_reduce_op("median", parsed));
}

TEST(FixedPointCodec, RoundTripsWithinPrecision)
{
    const std::uint32_t frac = 16;
    Rng rng = seeded_rng("fixed_point", 4);
    for (int trial = 0; trial < 200; ++trial) {
        double x = (rng.next_double() - 0.5) * 60000.0;
        double back = float_decode(float_encode(x, frac), frac);
        EXPECT_NEAR(back, x, 1.0 / (1 << frac)) << "x=" << x;
    }
    EXPECT_EQ(float_decode(float_encode(0.0, frac), frac), 0.0);
    EXPECT_EQ(float_decode(float_encode(-1.5, frac), frac), -1.5);
}

TEST(FixedPointCodec, AdditionIsExactInTheRing)
{
    // The switch ALU adds 32-bit words mod 2^32; two's-complement makes
    // that exact signed addition as long as the true sum stays in
    // range — gradients of mixed sign cancel correctly.
    const std::uint32_t frac = 16;
    Rng rng = seeded_rng("fixed_point_add", 5);
    for (int trial = 0; trial < 200; ++trial) {
        double a = (rng.next_double() - 0.5) * 1000.0;
        double b = (rng.next_double() - 0.5) * 1000.0;
        std::uint64_t word = apply_op(ReduceOp::kFloat,
                                      float_encode(a, frac),
                                      float_encode(b, frac));
        double qa = float_decode(float_encode(a, frac), frac);
        double qb = float_decode(float_encode(b, frac), frac);
        EXPECT_EQ(float_decode(word, frac), qa + qb)
            << "a=" << a << " b=" << b;
    }
}

TEST(FixedPointCodec, SaturatesAtInt32RangeAndRejectsNan)
{
    const std::uint32_t frac = 16;
    double max_rep = float_decode(float_encode(1e12, frac), frac);
    EXPECT_EQ(max_rep,
              std::ldexp(static_cast<double>(
                             std::numeric_limits<std::int32_t>::max()),
                         -static_cast<int>(frac)));
    double min_rep = float_decode(float_encode(-1e12, frac), frac);
    EXPECT_EQ(min_rep,
              std::ldexp(static_cast<double>(
                             std::numeric_limits<std::int32_t>::min()),
                         -static_cast<int>(frac)));
    EXPECT_EQ(float_encode(std::nan(""), frac),
              float_encode(-1e12, frac));
}

}  // namespace
}  // namespace ask::core
