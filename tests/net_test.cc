/** Unit tests for the network substrate: links, faults, fabric, costs. */
#include <gtest/gtest.h>

#include "net/cost_model.h"
#include "net/fault_model.h"
#include "net/link.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ask::net {
namespace {

TEST(Link, SerializationDelay)
{
    Link l(100.0, 500);
    // 1250 bytes at 100 Gbps = 100 ns + 500 ns propagation.
    EXPECT_EQ(l.transmit(0, 1250), 600);
    EXPECT_EQ(l.busy_until(), 100);
}

TEST(Link, BackToBackQueues)
{
    Link l(100.0, 0);
    EXPECT_EQ(l.transmit(0, 1250), 100);
    // Second packet waits for the wire.
    EXPECT_EQ(l.transmit(0, 1250), 200);
    // A later packet starts fresh.
    EXPECT_EQ(l.transmit(1000, 1250), 1100);
    EXPECT_EQ(l.bytes_carried(), 3750u);
}

TEST(Link, RateScales)
{
    Link slow(10.0, 0);
    EXPECT_EQ(slow.transmit(0, 1250), 1000);
}

TEST(FaultModel, ReliableDeliversExactlyOnce)
{
    FaultModel fm(FaultSpec::reliable(), 1);
    for (int i = 0; i < 1000; ++i) {
        auto d = fm.deliveries();
        ASSERT_EQ(d.size(), 1u);
        EXPECT_EQ(d[0], 0);
    }
    EXPECT_EQ(fm.dropped(), 0u);
}

TEST(FaultModel, LossRateApproximatelyHonored)
{
    FaultSpec spec;
    spec.loss_prob = 0.1;
    FaultModel fm(spec, 7);
    int lost = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        lost += fm.deliveries().empty();
    EXPECT_NEAR(lost / static_cast<double>(n), 0.1, 0.01);
    EXPECT_EQ(fm.dropped(), static_cast<std::uint64_t>(lost));
}

TEST(FaultModel, DuplicationYieldsTwoCopies)
{
    FaultSpec spec;
    spec.dup_prob = 1.0;
    FaultModel fm(spec, 3);
    EXPECT_EQ(fm.deliveries().size(), 2u);
}

TEST(FaultModel, ReorderAddsDelay)
{
    FaultSpec spec;
    spec.reorder_prob = 1.0;
    spec.reorder_delay_ns = 1000;
    FaultModel fm(spec, 5);
    auto d = fm.deliveries();
    ASSERT_EQ(d.size(), 1u);
    EXPECT_GT(d[0], 0);
}

TEST(FaultModel, CountersStatisticallyMatchSpec)
{
    // Every counter at once over a large sample: the observed rates of
    // drop, duplication, and delay must track the FaultSpec within a
    // few standard deviations (fixed seed, so this never flakes), and
    // the counters must agree with the delivery vectors they describe.
    FaultSpec spec = FaultSpec::lossy(0.1, 0.05, 0.2);
    spec.reorder_delay_ns = 10 * units::kMicrosecond;
    FaultModel fm(spec, 42);

    const int n = 100000;
    std::uint64_t copies = 0;
    Nanoseconds delay_sum = 0;
    for (int i = 0; i < n; ++i) {
        auto d = fm.deliveries();
        copies += d.size();
        for (Nanoseconds extra : d)
            delay_sum += extra;
    }

    auto rate = [n](std::uint64_t count) {
        return static_cast<double>(count) / n;
    };
    // sigma = sqrt(p(1-p)/n) is ~1e-3 here; 5e-3 is comfortably over
    // four sigmas for every probability involved.
    EXPECT_NEAR(rate(fm.dropped()), spec.loss_prob, 5e-3);
    EXPECT_NEAR(rate(fm.duplicated()), spec.dup_prob * (1 - spec.loss_prob),
                5e-3);
    EXPECT_NEAR(rate(fm.delayed()),
                spec.reorder_prob * (1 - spec.loss_prob) *
                    (1 + spec.dup_prob),
                8e-3);
    // Copies delivered = survivors + duplicate extras.
    EXPECT_EQ(copies, n - fm.dropped() + fm.duplicated());
    // Mean extra delay per delayed copy follows the exponential's mean.
    EXPECT_NEAR(static_cast<double>(delay_sum) /
                    static_cast<double>(fm.delayed()),
                static_cast<double>(spec.reorder_delay_ns), 500.0);
    EXPECT_EQ(fm.overridden_transmissions(), 0u);
}

TEST(FaultModel, OverrideWindowGovernsAndCounts)
{
    FaultModel fm(FaultSpec::reliable(), 9);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(fm.deliveries().size(), 1u);
    EXPECT_EQ(fm.overridden_transmissions(), 0u);

    fm.set_override(FaultSpec::blackout());
    EXPECT_TRUE(fm.overridden());
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(fm.deliveries().empty());
    EXPECT_EQ(fm.overridden_transmissions(), 100u);
    EXPECT_EQ(fm.dropped(), 100u);

    fm.clear_override();
    EXPECT_FALSE(fm.overridden());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(fm.deliveries().size(), 1u);
    EXPECT_EQ(fm.overridden_transmissions(), 100u);
}

class CountingNode : public Node
{
  public:
    void receive(Packet pkt) override { received.push_back(std::move(pkt)); }
    std::string name() const override { return "counting"; }
    std::vector<Packet> received;
};

TEST(Network, DeliversBetweenConnectedNodes)
{
    sim::Simulator simulator;
    Network network(simulator);
    CountingNode a, b;
    network.attach(&a);
    network.attach(&b);
    network.connect(a.node_id(), b.node_id(), 100.0, 100);

    Packet pkt;
    pkt.src = a.node_id();
    pkt.dst = b.node_id();
    pkt.data.resize(60);
    network.send(a.node_id(), b.node_id(), std::move(pkt));
    simulator.run();

    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].data.size(), 60u);
    EXPECT_NE(b.received[0].uid, 0u);
    EXPECT_EQ(network.stats().packets_delivered, 1u);
}

TEST(Network, LossCountsDropped)
{
    sim::Simulator simulator;
    Network network(simulator);
    CountingNode a, b;
    network.attach(&a);
    network.attach(&b);
    FaultSpec lossy;
    lossy.loss_prob = 1.0;
    network.connect(a.node_id(), b.node_id(), 100.0, 0, lossy);

    Packet pkt;
    network.send(a.node_id(), b.node_id(), std::move(pkt));
    simulator.run();
    EXPECT_TRUE(b.received.empty());
    EXPECT_EQ(network.stats().packets_dropped, 1u);
}

TEST(Network, DuplicationPreservesUid)
{
    sim::Simulator simulator;
    Network network(simulator);
    CountingNode a, b;
    network.attach(&a);
    network.attach(&b);
    FaultSpec dup;
    dup.dup_prob = 1.0;
    network.connect(a.node_id(), b.node_id(), 100.0, 0, dup);

    network.send(a.node_id(), b.node_id(), Packet{});
    simulator.run();
    ASSERT_EQ(b.received.size(), 2u);
    EXPECT_EQ(b.received[0].uid, b.received[1].uid);
}

TEST(Network, LinkBytesAccounting)
{
    sim::Simulator simulator;
    Network network(simulator);
    CountingNode a, b;
    network.attach(&a);
    network.attach(&b);
    network.connect(a.node_id(), b.node_id(), 100.0, 0);
    Packet pkt;
    pkt.data.resize(100);
    network.send(a.node_id(), b.node_id(), std::move(pkt));
    EXPECT_EQ(network.link_bytes(a.node_id(), b.node_id()),
              100u + kFramingOverheadBytes);
    EXPECT_EQ(network.link_bytes(b.node_id(), a.node_id()), 0u);
}

TEST(Network, SendOnMissingEdgePanics)
{
    sim::Simulator simulator;
    Network network(simulator);
    CountingNode a, b;
    network.attach(&a);
    network.attach(&b);
    EXPECT_DEATH(network.send(a.node_id(), b.node_id(), Packet{}), "no link");
}

TEST(CostModel, TlpQuantizationMatchesFig8aGlitches)
{
    CostModel cm;
    // TLP-count steps for 8x+40-byte frames land at x = 3, 11, 18, 26
    // (the paper's Fig. 8a shows the visible ones at 18 and 26).
    auto tlps = [&](int x) { return cm.tlp_count(8 * x + 40); };
    EXPECT_EQ(tlps(17), tlps(12));
    EXPECT_GT(tlps(18), tlps(17));
    EXPECT_EQ(tlps(25), tlps(19));
    EXPECT_GT(tlps(26), tlps(25));
}

TEST(CostModel, TxCostMonotoneInSize)
{
    CostModel cm;
    Nanoseconds prev = 0;
    for (std::uint64_t b = 48; b <= 1500; b += 8) {
        Nanoseconds c = cm.tx_cost_ns(b);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

TEST(CostModel, CalibratedRates)
{
    CostModel cm;
    // A 32-tuple ASK packet (296B of IP+ASK+payload) should cost ~80 ns
    // so that 4 channels saturate 100 Gbps (see EXPERIMENTS.md).
    Nanoseconds ask_pkt = cm.tx_cost_ns(296);
    EXPECT_GE(ask_pkt, 70);
    EXPECT_LE(ask_pkt, 95);
    // An MTU packet must be cheap enough for 2 cores to saturate the
    // line (< 246 ns) but too costly for one (> 123 ns).
    Nanoseconds mtu = cm.tx_cost_ns(1500);
    EXPECT_GT(mtu, 123);
    EXPECT_LT(mtu, 246);
}

TEST(CostModel, PreaggrCalibration)
{
    CostModel cm;
    // Paper Fig. 7: 6.4e9 tuples, 8 threads -> 111.2 s; 32 -> 33.2 s.
    double t8 = units::to_seconds(cm.preaggr_combine_ns(6400000000ULL, 8));
    double t32 = units::to_seconds(cm.preaggr_combine_ns(6400000000ULL, 32));
    EXPECT_NEAR(t8, 111.2, 3.0);
    EXPECT_NEAR(t32, 33.2, 1.5);
}

TEST(CostModel, SparkCurveAnchors)
{
    EXPECT_NEAR(spark_akvs(4), 7.74e6, 1e4);
    EXPECT_NEAR(spark_akvs(16), 2.9e7, 1e5);
    EXPECT_NEAR(spark_akvs(56), 4.26e7, 1e5);
    EXPECT_EQ(spark_akvs(100), spark_akvs(56));  // plateau
    EXPECT_LT(spark_akvs(1), spark_akvs(2));     // interpolation rises
}

TEST(CostModel, HostAggregateLinear)
{
    CostModel cm;
    EXPECT_EQ(cm.host_aggregate_ns(0), 0);
    EXPECT_EQ(cm.host_aggregate_ns(1000), 80000);
}

}  // namespace
}  // namespace ask::net
