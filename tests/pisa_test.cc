/** Unit tests for the PISA switch substrate and its enforced limits. */
#include <gtest/gtest.h>

#include <string>

#include "ask/switch_program.h"
#include "common/logging.h"
#include "net/network.h"
#include "pisa/pipeline.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"

namespace ask::pisa {
namespace {

/** Run `body`, expecting an install-time ask::ConfigError whose message
 *  contains `needle`. Install-time rejects are catchable (unlike the
 *  runtime pass-discipline panics below) so callers can probe a
 *  configuration without dying. */
template <typename Body>
void
expect_config_error(Body&& body, const std::string& needle)
{
    try {
        body();
        FAIL() << "expected ConfigError containing '" << needle << "'";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "ConfigError message lacks '" << needle << "': " << e.what();
    }
}

TEST(RegisterArray, RmwReadsAndWrites)
{
    Pipeline p(2, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 8, 32);
    p.begin_pass();
    std::uint64_t out = a->rmw(3, [](std::uint64_t& v) { v = 42; });
    EXPECT_EQ(out, 42u);
    EXPECT_EQ(a->cp_read(3), 42u);
    EXPECT_EQ(a->cp_read(0), 0u);
}

TEST(RegisterArray, OneAccessPerPassEnforced)
{
    Pipeline p(2, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 8, 32);
    p.begin_pass();
    a->rmw(0, [](std::uint64_t&) {});
    EXPECT_DEATH(a->rmw(1, [](std::uint64_t&) {}),
                 "accessed twice in one pipeline pass");
}

TEST(RegisterArray, NewPassAllowsAccessAgain)
{
    Pipeline p(2, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 8, 32);
    p.begin_pass();
    a->rmw(0, [](std::uint64_t& v) { v = 1; });
    p.begin_pass();
    a->rmw(0, [](std::uint64_t& v) { v += 1; });
    EXPECT_EQ(a->cp_read(0), 2u);
    EXPECT_EQ(a->access_count(), 2u);
}

TEST(RegisterArray, BackwardsStageAccessPanics)
{
    Pipeline p(3, 1024);
    RegisterArray* early = p.stage(0)->add_register_array("early", 4, 32);
    RegisterArray* late = p.stage(2)->add_register_array("late", 4, 32);
    p.begin_pass();
    late->rmw(0, [](std::uint64_t&) {});
    EXPECT_DEATH(early->rmw(0, [](std::uint64_t&) {}), "went backwards");
}

TEST(RegisterArray, SameStageTwoArraysOk)
{
    Pipeline p(1, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 4, 32);
    RegisterArray* b = p.stage(0)->add_register_array("b", 4, 32);
    p.begin_pass();
    a->rmw(0, [](std::uint64_t&) {});
    b->rmw(0, [](std::uint64_t&) {});  // parallel arrays: legal
    SUCCEED();
}

TEST(RegisterArray, WidthOverflowPanics)
{
    Pipeline p(1, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 4, 8);
    p.begin_pass();
    EXPECT_DEATH(a->rmw(0, [](std::uint64_t& v) { v = 256; }), "overflows");
}

TEST(RegisterArray, CpWriteChecksWidth)
{
    Pipeline p(1, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 4, 4);
    a->cp_write(0, 15);
    EXPECT_EQ(a->cp_read(0), 15u);
    EXPECT_DEATH(a->cp_write(0, 16), "overflows");
}

TEST(RegisterArray, CpClearRegion)
{
    Pipeline p(1, 1024);
    RegisterArray* a = p.stage(0)->add_register_array("a", 8, 32);
    for (std::size_t i = 0; i < 8; ++i)
        a->cp_write(i, i + 1);
    a->cp_clear(2, 3);
    EXPECT_EQ(a->cp_read(1), 2u);
    EXPECT_EQ(a->cp_read(2), 0u);
    EXPECT_EQ(a->cp_read(4), 0u);
    EXPECT_EQ(a->cp_read(5), 6u);
}

TEST(RegisterArray, SramFootprint)
{
    Pipeline p(1, 1 << 20);
    // Bit arrays are bit-packed: 1024 one-bit entries = 128 bytes.
    EXPECT_EQ(p.stage(0)->add_register_array("bits", 1024, 1)->sram_bytes(),
              128u);
    EXPECT_EQ(p.stage(0)->add_register_array("words", 100, 64)->sram_bytes(),
              800u);
}

TEST(Stage, MaxFourRegisterArrays)
{
    Pipeline p(1, 1 << 20);
    for (int i = 0; i < 4; ++i)
        p.stage(0)->add_register_array("a" + std::to_string(i), 4, 32);
    expect_config_error(
        [&] { p.stage(0)->add_register_array("a4", 4, 32); },
        "register arrays");
}

TEST(Stage, SramBudgetEnforced)
{
    Pipeline p(1, 1024);
    p.stage(0)->add_register_array("big", 128, 64);  // 1024 bytes: fits
    expect_config_error(
        [&] { p.stage(0)->add_register_array("more", 1, 64); },
        "SRAM exhausted");
}

TEST(Pipeline, FindArrayByName)
{
    Pipeline p(4, 1024);
    RegisterArray* a = p.stage(2)->add_register_array("needle", 4, 32);
    EXPECT_EQ(p.find_array("needle"), a);
    EXPECT_EQ(p.find_array("missing"), nullptr);
}

TEST(Pipeline, SramTotals)
{
    Pipeline p(2, 1000);
    p.stage(0)->add_register_array("a", 10, 64);  // 80 B
    p.stage(1)->add_register_array("b", 5, 64);   // 40 B
    EXPECT_EQ(p.sram_used_bytes(), 120u);
    EXPECT_EQ(p.sram_budget_bytes(), 2000u);
}

/** A trivial program that reflects every packet back to its source. */
class ReflectProgram : public SwitchProgram
{
  public:
    void
    process(net::Packet pkt, Emitter& emit) override
    {
        net::NodeId back = pkt.src;
        emit.emit(back, std::move(pkt));
    }
    std::string name() const override { return "reflect"; }
};

/** Collects delivered packets. */
class SinkNode : public net::Node
{
  public:
    void receive(net::Packet pkt) override { received.push_back(std::move(pkt)); }
    std::string name() const override { return "sink"; }
    std::vector<net::Packet> received;
};

TEST(PisaSwitch, RunsProgramAndEmits)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, 4, 1 << 20, /*latency=*/100);
    SinkNode host;
    network.attach(&sw);
    network.attach(&host);
    network.connect(sw.node_id(), host.node_id(), 100.0, 50);

    ReflectProgram prog;
    sw.install(&prog);

    net::Packet pkt;
    pkt.src = host.node_id();
    pkt.dst = host.node_id();
    pkt.data.resize(100);
    network.send(host.node_id(), sw.node_id(), std::move(pkt));
    simulator.run();

    ASSERT_EQ(host.received.size(), 1u);
    EXPECT_EQ(sw.stats().packets_in, 1u);
    EXPECT_EQ(sw.stats().packets_out, 1u);
    // Latency: serialize (138B @100G = 11ns) + prop 50 + pipeline 100 +
    // serialize + prop again.
    EXPECT_GT(simulator.now(), 200);
}

TEST(PisaSwitch, NoProgramPanics)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, 4, 1 << 20);
    network.attach(&sw);
    EXPECT_DEATH(sw.receive(net::Packet{}), "no program");
}

// ---------------------------------------------------------------------------
// Illegal ASK programs must be rejected at install time
// ---------------------------------------------------------------------------
//
// The hardware-feasibility rules the PISA substrate enforces (one
// access per register array per pass, at most four arrays per stage,
// per-stage SRAM budgets) exist so that any AskSwitchProgram that
// *constructs* is one a real pipeline could run. These tests pin the
// reject paths for programs that break the rules: construction throws
// ask::ConfigError (catchable) before any pipeline state is touched.

core::AskConfig
small_ask_config()
{
    core::AskConfig ask;
    ask.num_aas = 8;
    ask.aggregators_per_aa = 128;
    ask.medium_groups = 2;
    ask.window = 16;
    ask.max_hosts = 4;
    return ask;
}

TEST(AskProgramLimits, TooFewStagesRejected)
{
    // 8 AAs need 2 (seq/seen) + 2 (AAs, four per stage) + 1 (pkt_state)
    // = 5 stages; a 4-stage pipeline cannot host the program.
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, /*num_stages=*/4, 1 << 20);
    network.attach(&sw);
    expect_config_error(
        [&] { core::AskSwitchProgram program(small_ask_config(), sw); },
        "stages");
    // The verifier rejected before declaring anything: the pipeline is
    // untouched and usable for another attempt.
    for (std::size_t s = 0; s < sw.pipeline().num_stages(); ++s)
        EXPECT_EQ(sw.pipeline().stage(s)->array_count(), 0u);
}

TEST(AskProgramLimits, SramOverflowRejected)
{
    // Aggregator arrays of 2^20 64-bit entries (8 MiB per AA) blow the
    // default 1.25 MiB stage budget.
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, kDefaultStagesPerPipeline,
                  kDefaultStageSramBytes);
    network.attach(&sw);
    core::AskConfig ask = small_ask_config();
    ask.aggregators_per_aa = 1 << 20;
    expect_config_error([&] { core::AskSwitchProgram program(ask, sw); },
                        "SRAM exhausted");
    for (std::size_t s = 0; s < sw.pipeline().num_stages(); ++s)
        EXPECT_EQ(sw.pipeline().stage(s)->array_count(), 0u);
}

TEST(AskProgramLimits, FourArraysPerStageRespected)
{
    // A legal program never places a fifth array on one stage: the
    // widest config (64 AAs) still packs exactly four per stage. Pin
    // the placement arithmetic by building the largest config that
    // fits the default pipeline and counting arrays per stage.
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, kDefaultStagesPerPipeline, 1 << 22);
    network.attach(&sw);
    core::AskConfig ask = small_ask_config();
    ask.num_aas = 32;
    ask.medium_groups = 8;
    core::AskSwitchProgram program(ask, sw);
    for (std::size_t s = 0; s < sw.pipeline().num_stages(); ++s)
        EXPECT_LE(sw.pipeline().stage(s)->array_count(), 4u)
            << "stage " << s;
}

TEST(AskProgramLimits, IllegalConfigRejected)
{
    // AskConfig::validate() throws before any switch resources are
    // touched: medium groups exceeding the AA count is a user error.
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, kDefaultStagesPerPipeline, 1 << 20);
    network.attach(&sw);
    core::AskConfig ask = small_ask_config();
    ask.num_aas = 4;
    ask.medium_groups = 3;  // 3*2 medium AAs > 4 total
    expect_config_error([&] { core::AskSwitchProgram program(ask, sw); },
                        "exceed");
}

}  // namespace
}  // namespace ask::pisa
