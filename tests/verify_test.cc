/**
 * Unit tests for the static PISA-legality verifier: the real ASK plans
 * must prove legal, hand-built illegal plans must be rejected with
 * path-trace diagnostics, and the dynamic AccessOracle must accept
 * exactly the sequences the plan predicts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "ask/config.h"
#include "ask/switch_program.h"
#include "net/network.h"
#include "pisa/pipeline.h"
#include "pisa/pisa_switch.h"
#include "pisa/verify/access_plan.h"
#include "pisa/verify/oracle.h"
#include "pisa/verify/verifier.h"
#include "sim/simulator.h"

namespace ask::pisa::verify {
namespace {

PipelineBudget
default_budget()
{
    PipelineBudget b;
    b.num_stages = kDefaultStagesPerPipeline;
    b.sram_per_stage = kDefaultStageSramBytes;
    b.max_arrays_per_stage = kMaxRegisterArraysPerStage;
    return b;
}

/** First violation of `rule`; nullptr when the rule never fired. */
const Violation*
find_violation(const VerifyResult& result, const std::string& rule)
{
    for (const auto& v : result.violations) {
        if (v.rule == rule)
            return &v;
    }
    return nullptr;
}

// ---------------------------------------------------------------------------
// The real ASK plans are PISA-legal
// ---------------------------------------------------------------------------

TEST(AccessPlanVerify, DefaultConfigIsLegal)
{
    core::AskConfig config;  // paper default: 32 AAs
    config.validate();
    AccessPlan plan = core::AskSwitchProgram::make_access_plan(config);
    VerifyResult result = verify(plan, default_budget());
    EXPECT_TRUE(result.ok()) << result.describe();
    EXPECT_GT(result.paths_checked, 0u);
}

TEST(AccessPlanVerify, BothSeenVariantsAreLegal)
{
    for (bool compact : {true, false}) {
        core::AskConfig config;
        config.compact_seen = compact;
        config.validate();
        AccessPlan plan = core::AskSwitchProgram::make_access_plan(config);
        VerifyResult result = verify(plan, default_budget());
        EXPECT_TRUE(result.ok())
            << "compact_seen=" << compact << ": " << result.describe();
    }
}

TEST(AccessPlanVerify, ShadowCopiesOffIsLegal)
{
    core::AskConfig config;
    config.shadow_copies = false;
    config.validate();
    AccessPlan plan = core::AskSwitchProgram::make_access_plan(config);
    VerifyResult result = verify(plan, default_budget());
    EXPECT_TRUE(result.ok()) << result.describe();
}

TEST(AccessPlanVerify, ReduceOpsDeclaredPerPartBits)
{
    // 32-bit vParts compile all five operators; 16-bit vParts cannot
    // carry Q-format floats, so kFloat is absent from that plan — the
    // declaration gap is what install-time binding rejects against.
    core::AskConfig config;
    config.validate();
    AccessPlan plan = core::AskSwitchProgram::make_access_plan(config);
    EXPECT_EQ(plan.reduce_ops.size(), 5u);
    ASSERT_NE(plan.find_reduce_op(4), nullptr);
    EXPECT_EQ(plan.find_reduce_op(4)->name, "float");
    EXPECT_EQ(plan.find_reduce_op(4)->value_bits, 32u);

    core::AskConfig narrow;
    narrow.part_bits = 16;
    narrow.validate();
    AccessPlan p16 = core::AskSwitchProgram::make_access_plan(narrow);
    EXPECT_EQ(p16.reduce_ops.size(), 4u);
    EXPECT_EQ(p16.find_reduce_op(4), nullptr);
    for (std::uint8_t id = 0; id < 4; ++id)
        EXPECT_NE(p16.find_reduce_op(id), nullptr) << unsigned(id);
    VerifyResult result = verify(p16, default_budget());
    EXPECT_TRUE(result.ok()) << result.describe();
}

TEST(AccessPlanVerify, MalformedReduceOpDeclarationsRejected)
{
    core::AskConfig config;
    config.validate();
    const AccessPlan base = core::AskSwitchProgram::make_access_plan(config);

    auto expect_rejected = [&](ReduceOpDecl decl, const char* why) {
        AccessPlan plan = base;
        plan.reduce_ops.push_back(std::move(decl));
        VerifyResult result = verify(plan, default_budget());
        EXPECT_NE(find_violation(result, "reduce-op"), nullptr) << why;
    };
    expect_rejected({0, "sum2", 32}, "duplicate id");
    expect_rejected({9, "", 32}, "missing name");
    expect_rejected({9, "sum", 32}, "duplicate name");
    expect_rejected({9, "wide", 64}, "operand wider than a vPart");
    expect_rejected({9, "null", 0}, "zero-width operand");
}

TEST(AccessPlanVerify, PlanMatchesInstalledPlacement)
{
    // The constructor declares exactly the plan's arrays: same names,
    // same stages, same SRAM shape.
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, kDefaultStagesPerPipeline, kDefaultStageSramBytes);
    network.attach(&sw);
    core::AskConfig config;
    core::AskSwitchProgram program(config, sw);

    const AccessPlan& plan = program.access_plan();
    std::size_t declared = 0;
    for (std::size_t s = 0; s < sw.pipeline().num_stages(); ++s)
        declared += sw.pipeline().stage(s)->array_count();
    EXPECT_EQ(declared, plan.arrays.size());

    for (const auto& d : plan.arrays) {
        RegisterArray* arr = sw.pipeline().find_array(d.name);
        ASSERT_NE(arr, nullptr) << d.name;
        EXPECT_EQ(arr->sram_bytes(), d.sram_bytes()) << d.name;
        bool on_stage = false;
        Stage* st = sw.pipeline().stage(d.stage);
        for (std::size_t i = 0; i < st->array_count(); ++i)
            on_stage = on_stage || st->array(i) == arr;
        EXPECT_TRUE(on_stage)
            << d.name << " not on plan stage " << d.stage;
    }
}

// ---------------------------------------------------------------------------
// Hand-built illegal plans are rejected with path traces
// ---------------------------------------------------------------------------

/** Two arrays on separate stages, no passes: a legal skeleton the
 *  illegal-plan tests below extend. */
AccessPlan
skeleton()
{
    AccessPlan plan;
    plan.program = "test";
    plan.arrays.push_back({"a", 0, 16, 32});
    plan.arrays.push_back({"b", 1, 16, 32});
    return plan;
}

TEST(AccessPlanVerify, DoubleAccessOnOnePathRejected)
{
    AccessPlan plan = skeleton();
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("a", AccessKind::kRmw));
    pass.body.steps.push_back(
        branch({"retry", {}},
               {{"hit", {{access("b", AccessKind::kRmw)}}},
                {"repair", {{access("a", AccessKind::kRmw),
                             access("b", AccessKind::kRmw)}}}}));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    ASSERT_FALSE(result.ok());
    const Violation* v = find_violation(result, "single-access");
    ASSERT_NE(v, nullptr) << result.describe();
    // The diagnostic names the array and the branch arms that reach it.
    EXPECT_NE(v->message.find("'a'"), std::string::npos) << v->message;
    EXPECT_NE(v->message.find("reached twice"), std::string::npos);
    EXPECT_NE(v->path.find("repair"), std::string::npos) << v->path;
    // The legal arm alone raises no violation: only the repair path is
    // reported.
    EXPECT_EQ(v->path.find("hit"), std::string::npos) << v->path;
}

TEST(AccessPlanVerify, BackwardStageHopRejected)
{
    AccessPlan plan = skeleton();
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("b", AccessKind::kRmw));
    pass.body.steps.push_back(access("a", AccessKind::kRmw));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "backward-stage");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("'a' accessed after stage 1"),
              std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, GuardDependencyOnLaterStageRejected)
{
    // 'a' (stage 0) is guarded by 'b' (stage 1): the dependency points
    // backwards, so no single pipeline pass can realize it.
    AccessPlan plan = skeleton();
    plan.arrays.push_back({"c", 2, 16, 32});
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("b", AccessKind::kRmw));
    pass.body.steps.push_back(
        branch({"b verdict", {"b"}},
               {{"yes", {{access("c", AccessKind::kRmw),
                          guarded_access("a", AccessKind::kRmw,
                                         {"stale check", {"b"}})}}}}));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "forward-dependency");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("only feed guards of later stages"),
              std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, GuardDependencyNotAccessedOnPathRejected)
{
    // The guard of 'b' names 'a', but the path never accesses 'a': the
    // ALU result the guard consumes is never produced.
    AccessPlan plan = skeleton();
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(
        guarded_access("b", AccessKind::kRmw, {"a verdict", {"a"}}));
    plan.passes.push_back(std::move(pass));
    // Keep coverage happy: 'a' is accessed by another pass.
    PassPlan other;
    other.name = "other";
    other.body.steps.push_back(access("a", AccessKind::kRmw));
    plan.passes.push_back(std::move(other));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "forward-dependency");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("not accessed earlier on this path"),
              std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, UndeclaredArrayRejected)
{
    AccessPlan plan = skeleton();
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("a", AccessKind::kRmw));
    pass.body.steps.push_back(access("b", AccessKind::kRmw));
    pass.body.steps.push_back(access("ghost", AccessKind::kRmw));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "coverage");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("undeclared array 'ghost'"),
              std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, DeadDeclaredArrayRejected)
{
    AccessPlan plan = skeleton();
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("a", AccessKind::kRmw));
    plan.passes.push_back(std::move(pass));  // 'b' never accessed

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "coverage");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("'b' is never accessed"), std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, TooManyArraysPerStageRejected)
{
    AccessPlan plan;
    plan.program = "test";
    PassPlan pass;
    pass.name = "data";
    for (int i = 0; i < 5; ++i) {
        std::string name = "r" + std::to_string(i);
        plan.arrays.push_back({name, 0, 16, 32});
        pass.body.steps.push_back(access(name, AccessKind::kRmw));
    }
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "stage-arrays");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("5 register arrays"), std::string::npos)
        << v->message;
}

TEST(AccessPlanVerify, SramOverflowRejected)
{
    AccessPlan plan;
    plan.program = "test";
    plan.arrays.push_back({"big", 0, 1 << 20, 64});  // 8 MiB
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("big", AccessKind::kRmw));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "sram");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("SRAM exhausted"), std::string::npos);
}

TEST(AccessPlanVerify, StagePastPipelineEndRejected)
{
    AccessPlan plan = skeleton();
    plan.arrays.push_back({"far", 99, 16, 32});
    PassPlan pass;
    pass.name = "data";
    pass.body.steps.push_back(access("a", AccessKind::kRmw));
    pass.body.steps.push_back(access("b", AccessKind::kRmw));
    pass.body.steps.push_back(access("far", AccessKind::kRmw));
    plan.passes.push_back(std::move(pass));

    VerifyResult result = verify(plan, default_budget());
    const Violation* v = find_violation(result, "stage-count");
    ASSERT_NE(v, nullptr) << result.describe();
    EXPECT_NE(v->message.find("stage 99"), std::string::npos) << v->message;
}

// ---------------------------------------------------------------------------
// The dynamic oracle accepts planned sequences and kills unplanned ones
// ---------------------------------------------------------------------------

TEST(AccessOracle, AcceptsEveryAskDataPassVariant)
{
    core::AskConfig config;  // compact seen, shadow copies on
    config.validate();
    AccessOracle oracle(
        core::AskSwitchProgram::make_access_plan(config));

    auto accepts = [&](const std::vector<std::string>& seq) {
        oracle.begin_pass();
        for (const auto& a : seq) {
            if (!oracle.on_access(a, nullptr))
                return false;
        }
        return true;
    };

    EXPECT_TRUE(accepts({"max_seq"}));  // stale drop
    EXPECT_TRUE(accepts({"max_seq", "seen", "pkt_state"}));  // duplicate
    EXPECT_TRUE(accepts({"max_seq", "seen"}));               // long_data
    EXPECT_TRUE(accepts({"swap_epoch"}));                    // swap
    EXPECT_TRUE(accepts({}));                                // forward
    // First appearance: epoch read, then any ascending AA subset.
    EXPECT_TRUE(accepts({"max_seq", "seen", "swap_epoch", "aa_0", "aa_5",
                         "aa_31", "pkt_state"}));

    EXPECT_FALSE(accepts({"seen"}));  // skipped the stage-0 boundary
    EXPECT_FALSE(accepts({"max_seq", "seen", "aa_5", "aa_0", "pkt_state"}))
        << "descending AA order must die";
    EXPECT_FALSE(accepts({"max_seq", "seen", "seen"}));
    EXPECT_FALSE(accepts({"max_seq", "seen", "pkt_state", "aa_0"}));
}

TEST(AccessOracle, PlainSeenParityOrders)
{
    core::AskConfig config;
    config.compact_seen = false;
    config.validate();
    AccessOracle oracle(
        core::AskSwitchProgram::make_access_plan(config));

    auto accepts = [&](const std::vector<std::string>& seq) {
        oracle.begin_pass();
        for (const auto& a : seq) {
            if (!oracle.on_access(a, nullptr))
                return false;
        }
        return true;
    };

    // Record-then-clear runs in parity order: either array may lead.
    EXPECT_TRUE(accepts({"max_seq", "seen_even", "seen_odd", "pkt_state"}));
    EXPECT_TRUE(accepts({"max_seq", "seen_odd", "seen_even", "pkt_state"}));
    EXPECT_FALSE(accepts({"max_seq", "seen_even", "seen_even"}));
}

TEST(AccessOracle, DiagnosticListsThePassLog)
{
    core::AskConfig config;
    config.validate();
    AccessOracle oracle(
        core::AskSwitchProgram::make_access_plan(config));
    oracle.begin_pass();
    EXPECT_TRUE(oracle.on_access("max_seq", nullptr));
    std::string diag;
    EXPECT_FALSE(oracle.on_access("pkt_state", &diag))
        << "pkt_state without seen must die";
    EXPECT_NE(diag.find("pkt_state"), std::string::npos) << diag;
    EXPECT_NE(diag.find("max_seq"), std::string::npos) << diag;
}

TEST(AccessOracle, CountsPassesAndAccesses)
{
    core::AskConfig config;
    config.validate();
    AccessOracle oracle(
        core::AskSwitchProgram::make_access_plan(config));
    oracle.begin_pass();
    oracle.on_access("max_seq", nullptr);
    oracle.begin_pass();
    oracle.on_access("max_seq", nullptr);
    oracle.on_access("seen", nullptr);
    EXPECT_EQ(oracle.passes(), 2u);
    EXPECT_EQ(oracle.accesses(), 3u);
}

// ---------------------------------------------------------------------------
// End to end: the armed cross-check survives real traffic
// ---------------------------------------------------------------------------

TEST(AccessOracle, ArmedProgramProcessesTraffic)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    PisaSwitch sw(network, kDefaultStagesPerPipeline, kDefaultStageSramBytes);
    network.attach(&sw);
    core::AskConfig config;
    core::AskSwitchProgram program(config, sw);
    program.enable_access_verification();
    ASSERT_NE(program.access_oracle(), nullptr);
    EXPECT_EQ(sw.pipeline().access_oracle(), program.access_oracle());
    // Idempotent.
    program.enable_access_verification();
    EXPECT_EQ(sw.pipeline().access_oracle(), program.access_oracle());
}

}  // namespace
}  // namespace ask::pisa::verify
