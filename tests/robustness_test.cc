/**
 * Robustness and configuration-sweep tests: the exactly-once invariant
 * across window sizes, AA counts, channel counts, seen-design variants,
 * aggregation operators, and protocol edge cases (FIN retries, roaming
 * duplicates, value wraparound, FIFO job ordering).
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "ask/cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "workload/generators.h"
#include "workload/text_corpus.h"

namespace ask::core {
namespace {

KvStream
mixed_stream(Rng& rng, std::size_t n, std::size_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(distinct);
        std::size_t len = 1 + id % 12;  // short/medium/long mix
        std::string key;
        std::uint64_t x = mix64(id + 1);
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + (x >> (5 * (j % 12))) % 26));
        s.push_back({key, static_cast<Value>(1 + id % 7)});
    }
    return s;
}

AggregateMap
truth_of(const std::vector<StreamSpec>& streams, AggOp op)
{
    AggregateMap t;
    for (const auto& s : streams)
        aggregate_into(t, s.stream, op);
    return t;
}

// ---------------------------------------------------------------------------
// Sweep: window size x seen design x loss, exactness must hold.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::uint32_t /*window*/, bool /*compact*/,
                              double /*loss*/>;

class ReliabilitySweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ReliabilitySweep, ExactUnderFaults)
{
    auto [window, compact, loss] = GetParam();
    ClusterConfig cc;
    cc.num_hosts = 3;
    cc.ask.max_hosts = 3;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 2;
    cc.ask.window = window;
    cc.ask.compact_seen = compact;
    cc.ask.swap_threshold_packets = 32;
    cc.faults = net::FaultSpec::lossy(loss, loss / 2, 0.1);
    cc.seed = window * 7 + (compact ? 1 : 0) + 1;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", cc.seed);
    std::vector<StreamSpec> streams{{1, mixed_stream(rng, 400, 60)},
                                    {2, mixed_stream(rng, 400, 60)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.result, truth)
        << "W=" << window << " compact=" << compact << " loss=" << loss;
}

INSTANTIATE_TEST_SUITE_P(
    WindowsSeenLoss, ReliabilitySweep,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Bool(),
                       ::testing::Values(0.0, 0.05, 0.25)));

// ---------------------------------------------------------------------------
// Sweep: slot-layout geometry (AA count, medium groups, channels).
// ---------------------------------------------------------------------------

using LayoutParam =
    std::tuple<std::uint32_t /*num_aas*/, std::uint32_t /*medium groups*/,
               std::uint32_t /*channels*/>;

class LayoutSweep : public ::testing::TestWithParam<LayoutParam>
{
};

TEST_P(LayoutSweep, ExactAcrossGeometries)
{
    auto [aas, groups, channels] = GetParam();
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = aas;
    cc.ask.medium_groups = groups;
    cc.ask.aggregators_per_aa = 64;
    cc.ask.channels_per_host = channels;
    cc.ask.window = 16;
    cc.ask.swap_threshold_packets = 0;
    if (aas > 32)
        cc.switch_stages = 34;  // 64 AAs need two chained pipelines
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", aas * 31 + groups * 7 + channels);
    std::vector<StreamSpec> streams{{1, mixed_stream(rng, 500, 80)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth) << "aas=" << aas << " groups=" << groups;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutSweep,
    ::testing::Values(LayoutParam{4, 0, 1}, LayoutParam{8, 0, 2},
                      LayoutParam{8, 2, 1}, LayoutParam{16, 4, 2},
                      LayoutParam{32, 8, 4}, LayoutParam{64, 8, 2}));

// ---------------------------------------------------------------------------
// Aggregation operators.
// ---------------------------------------------------------------------------

TEST(AggOps, MaxEndToEnd)
{
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 2;
    cc.ask.op = AggOp::kMax;
    cc.ask.swap_threshold_packets = 0;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", 5);
    KvStream s;
    for (int i = 0; i < 800; ++i) {
        s.push_back({"k" + std::to_string(rng.next_below(30)),
                     static_cast<Value>(rng.next_below(100000))});
    }
    std::vector<StreamSpec> streams{{1, std::move(s)}};
    AggregateMap truth = truth_of(streams, AggOp::kMax);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
}

TEST(AggOps, MinEndToEnd)
{
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 0;
    cc.ask.op = AggOp::kMin;
    cc.ask.swap_threshold_packets = 0;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", 6);
    KvStream s;
    for (int i = 0; i < 800; ++i) {
        s.push_back({u64_key(rng.next_below(40)),
                     static_cast<Value>(1 + rng.next_below(100000))});
    }
    std::vector<StreamSpec> streams{{1, std::move(s)}};
    AggregateMap truth = truth_of(streams, AggOp::kMin);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
}

TEST(AggOps, SwitchAddWrapsAt32Bits)
{
    // The switch ALU adds modulo 2^32 (paper: 32-bit vParts). Two values
    // that overflow must wrap on the switch exactly as apply_op says.
    EXPECT_EQ(apply_op(AggOp::kAdd, 0xffffffffu, 2u), 1u);

    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 4;
    cc.ask.aggregators_per_aa = 16;
    cc.ask.medium_groups = 0;
    cc.ask.swap_threshold_packets = 0;
    AskCluster cluster(cc);
    KvStream s{{"w", 0xffffffffu}, {"w", 2u}};
    TaskResult r = cluster.run_task(1, 0, {{1, s}});
    // Both tuples hit the same switch aggregator; the fetched value is
    // the wrapped 32-bit sum.
    EXPECT_EQ(r.result.at("w"), 1u);
}

// ---------------------------------------------------------------------------
// Protocol edge cases.
// ---------------------------------------------------------------------------

TEST(Protocol, FinSurvivesHeavyLoss)
{
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 0;
    cc.faults = net::FaultSpec::lossy(0.4, 0.1, 0.2);  // brutal
    cc.seed = 99;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", 99);
    std::vector<StreamSpec> streams{{1, mixed_stream(rng, 100, 20)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.total_host_stats().retransmissions, 0u);
}

TEST(Protocol, ChannelServesTasksFifo)
{
    // Two tasks that hash to the same sender channel complete in
    // submission order (the channel serves send jobs FIFO, §3.1).
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 256;
    cc.ask.medium_groups = 0;
    cc.ask.channels_per_host = 1;  // force sharing
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", 3);
    std::vector<sim::SimTime> finish(2, 0);
    for (TaskId t = 0; t < 2; ++t) {
        std::vector<StreamSpec> streams{{1, mixed_stream(rng, 300, 30)}};
        cluster.submit_task(t + 1, 0, std::move(streams), {.region_len = 32},
                            [&finish, t, &cluster](AggregateMap,
                                                   TaskReport rep) {
                                finish[t] = rep.finish_time;
                                (void)cluster;
                            });
    }
    cluster.run();
    ASSERT_GT(finish[0], 0);
    ASSERT_GT(finish[1], 0);
    EXPECT_LT(finish[0], finish[1]);
}

TEST(Protocol, ManySequentialTasksDoNotLeakSwitchMemory)
{
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 64;
    cc.ask.medium_groups = 0;
    cc.ask.max_tasks = 4;
    AskCluster cluster(cc);

    std::uint32_t free_before = cluster.controller().free_aggregators();
    Rng rng = seeded_rng("robustness_test", 8);
    for (TaskId t = 1; t <= 12; ++t) {
        std::vector<StreamSpec> streams{{1, mixed_stream(rng, 100, 10)}};
        AggregateMap truth = truth_of(streams, AggOp::kAdd);
        TaskResult r = cluster.run_task(t, 0, streams);
        EXPECT_EQ(r.result, truth) << "task " << t;
    }
    // Every region was released; the whole pool is free again.
    EXPECT_EQ(cluster.controller().free_aggregators(), free_before);
}

TEST(Protocol, CorpusWorkloadWithFaultsStaysExact)
{
    // The full stack — variable-length corpus keys, medium-key groups,
    // long-key bypass, shadow swaps, faulty network — in one pot.
    ClusterConfig cc;
    cc.num_hosts = 3;
    cc.ask.max_hosts = 3;
    cc.ask.aggregators_per_aa = 512;
    cc.ask.swap_threshold_packets = 64;
    cc.faults = net::FaultSpec::lossy(0.08, 0.04, 0.15);
    cc.seed = 17;
    AskCluster cluster(cc);

    workload::CorpusProfile p = workload::newsgroups_profile();
    p.vocabulary = 4000;
    workload::TextCorpus corpus(p, 17);
    std::vector<StreamSpec> streams{{1, corpus.generate(5000)},
                                    {2, corpus.generate(5000)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.switch_stats().long_packets, 0u);
    EXPECT_GT(cluster.switch_stats().tuples_aggregated, 0u);
}

TEST(Protocol, SingleHostSelfAggregation)
{
    // Degenerate deployment: the receiver aggregates its own stream
    // through the switch (a co-located mapper with no remote senders).
    ClusterConfig cc;
    cc.num_hosts = 1;
    cc.ask.max_hosts = 1;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 64;
    cc.ask.medium_groups = 0;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("robustness_test", 4);
    std::vector<StreamSpec> streams{{0, mixed_stream(rng, 200, 20)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
}

TEST(Protocol, LargeValuesSurviveWire)
{
    // Values use the full 32-bit vPart range on the wire.
    ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.num_aas = 4;
    cc.ask.aggregators_per_aa = 64;
    cc.ask.medium_groups = 0;
    AskCluster cluster(cc);
    KvStream s{{"a", 0xfffffffeu}, {"b", 0x80000000u}, {"c", 1u}};
    TaskResult r = cluster.run_task(1, 0, {{1, s}});
    EXPECT_EQ(r.result.at("a"), 0xfffffffeu);
    EXPECT_EQ(r.result.at("b"), 0x80000000u);
    EXPECT_EQ(r.result.at("c"), 1u);
}

}  // namespace
}  // namespace ask::core
