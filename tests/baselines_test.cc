/** Tests for the baseline systems: NoAggr, PreAggr, Spark models,
 *  strawman config, and the synchronous INA programs. */
#include <gtest/gtest.h>

#include "baselines/noaggr.h"
#include "baselines/preaggr.h"
#include "baselines/spark_model.h"
#include "baselines/strawman.h"
#include "baselines/sync_ina.h"

namespace ask::baselines {
namespace {

TEST(NoAggr, SingleSenderSaturatesNearLineRate)
{
    BulkSpec spec;
    spec.tuples_per_sender = 2000000;  // 16 MB
    spec.sender_channels = 4;
    spec.receiver_channels = 4;
    BulkResult r = run_noaggr(spec);
    // MTU packets: goodput ~ 1460/1538 of line rate minus ramp effects.
    EXPECT_GT(r.goodput_gbps, 85.0);
    EXPECT_LE(r.goodput_gbps, 95.0);
    EXPECT_GT(r.throughput_gbps, r.goodput_gbps);
    EXPECT_LE(r.throughput_gbps, 100.5);
}

TEST(NoAggr, OneCoreCannotSaturate)
{
    BulkSpec spec;
    spec.tuples_per_sender = 1000000;
    spec.sender_channels = 1;
    BulkResult one = run_noaggr(spec);
    spec.sender_channels = 2;
    spec.tuples_per_sender = 2000000;
    BulkResult two = run_noaggr(spec);
    // Paper Fig. 13(a): NoAggr saturates the NIC with 2 cores, not 1.
    EXPECT_LT(one.throughput_gbps, 95.0);
    EXPECT_GT(two.throughput_gbps, 97.0);
    EXPECT_GT(two.goodput_gbps, 89.0);
}

TEST(NoAggr, ReceiverLinkLimitsManySenders)
{
    // Paper Fig. 13(b): per-sender throughput ~ 1/n with NoAggr.
    BulkSpec spec;
    spec.tuples_per_sender = 500000;
    spec.num_senders = 8;
    BulkResult r = run_noaggr(spec);
    EXPECT_LT(r.per_sender_goodput_gbps, 13.0);
    EXPECT_GT(r.per_sender_goodput_gbps, 10.0);
}

TEST(NoAggr, SmallPacketsHurtGoodput)
{
    BulkSpec mtu, tiny;
    mtu.tuples_per_sender = tiny.tuples_per_sender = 500000;
    tiny.payload_bytes = 64;
    BulkResult rm = run_noaggr(mtu);
    BulkResult rt = run_noaggr(tiny);
    EXPECT_LT(rt.goodput_gbps, rm.goodput_gbps / 2);
}

TEST(PreAggr, MatchesPaperCalibration)
{
    PreAggrSpec spec;
    spec.tuples = 6400000000ULL;  // 51.2 GB of 8-byte tuples
    spec.distinct_keys = 33554432;  // 256 MB combined
    spec.threads = 8;
    PreAggrResult r8 = run_preaggr(spec);
    EXPECT_NEAR(r8.jct_s, 111.2, 4.0);
    spec.threads = 32;
    PreAggrResult r32 = run_preaggr(spec);
    EXPECT_NEAR(r32.jct_s, 33.2, 2.0);
    EXPECT_NEAR(r32.cpu_fraction, 32.0 / 56.0, 1e-9);
    // Sub-linear thread scaling (contention).
    EXPECT_GT(r32.jct_s, r8.jct_s / 4.0);
}

TEST(SparkModel, VariantOrderingAndBand)
{
    SparkJobSpec spec;  // the Fig. 10/11 configuration
    auto vanilla = run_spark_job(spec);
    spec.variant = SparkVariant::kShm;
    auto shm = run_spark_job(spec);
    spec.variant = SparkVariant::kRdma;
    auto rdma = run_spark_job(spec);

    // Paper Fig. 11: mapper TCTs in the 15.89-17.67 s band at 1.5e8
    // tuples/mapper; SHM < RDMA < vanilla.
    EXPECT_NEAR(vanilla.mapper_tct_s, 17.7, 0.5);
    EXPECT_NEAR(shm.mapper_tct_s, 15.9, 0.5);
    EXPECT_NEAR(rdma.mapper_tct_s, 16.8, 0.5);
    EXPECT_LT(shm.jct_s, rdma.jct_s);
    EXPECT_LT(rdma.jct_s, vanilla.jct_s);

    // Paper Fig. 10 finding: SHM/RDMA give no *significant* gain over
    // vanilla (pre-aggregated shuffle volume is small).
    EXPECT_GT(shm.jct_s, vanilla.jct_s * 0.8);
}

TEST(SparkModel, JctScalesWithVolume)
{
    SparkJobSpec spec;
    spec.tuples_per_mapper = 50000000;
    double jct5 = run_spark_job(spec).jct_s;
    spec.tuples_per_mapper = 200000000;
    double jct20 = run_spark_job(spec).jct_s;
    EXPECT_GT(jct20, 3.0 * jct5);
    EXPECT_LT(jct20, 4.5 * jct5);
}

TEST(Strawman, ConfigurationMatchesAssumptions)
{
    auto cc = strawman_cluster(2, 16, 1 << 16);
    EXPECT_EQ(cc.ask.num_aas, 1u);
    EXPECT_EQ(cc.ask.medium_groups, 0u);
    EXPECT_FALSE(cc.ask.shadow_copies);
    EXPECT_GE(cc.ask.aggregators_per_aa, 4u << 16);
    cc.ask.validate();
}

TEST(SyncIna, SwitchMlCorrectSums)
{
    SyncInaSpec spec;
    spec.variant = SyncVariant::kSwitchMl;
    spec.workers = 4;
    spec.grad_elements = 1 << 14;
    spec.values_per_packet = 16;
    spec.slots = 64;
    SyncInaResult r = run_sync_allreduce(spec);
    EXPECT_TRUE(r.correct);
    EXPECT_EQ(r.ps_fallback_chunks, 0u);
    EXPECT_GT(r.per_worker_goodput_gbps, 1.0);
}

TEST(SyncIna, AtpCorrectWithFallback)
{
    SyncInaSpec spec;
    spec.variant = SyncVariant::kAtp;
    spec.workers = 4;
    spec.grad_elements = 1 << 14;
    spec.values_per_packet = 64;
    spec.slots = 8;  // tiny pool -> hash collisions -> PS fallback
    // Stragglers keep slots occupied long enough for other chunks to
    // collide (synchronized workers drain slots almost instantly).
    spec.worker_skew_ns = 50 * units::kMicrosecond;
    SyncInaResult r = run_sync_allreduce(spec);
    EXPECT_TRUE(r.correct);
    EXPECT_GT(r.ps_fallback_chunks, 0u);
}

TEST(SyncIna, AtpLargePoolRarelyFallsBack)
{
    SyncInaSpec spec;
    spec.variant = SyncVariant::kAtp;
    spec.workers = 2;
    spec.grad_elements = 1 << 13;
    spec.values_per_packet = 64;
    spec.slots = 4096;
    SyncInaResult r = run_sync_allreduce(spec);
    EXPECT_TRUE(r.correct);
    EXPECT_LT(static_cast<double>(r.ps_fallback_chunks) /
                  static_cast<double>(r.chunks),
              0.2);
}

TEST(SyncIna, SmallPacketsUnderperformLargeOnes)
{
    // The §5.6 claim: SwitchML-style small packets leave bandwidth on
    // the table relative to ATP-style larger packets.
    SyncInaSpec small;
    small.variant = SyncVariant::kSwitchMl;
    small.grad_elements = 1 << 18;
    small.values_per_packet = 16;
    small.slots = 512;
    SyncInaSpec large = small;
    large.values_per_packet = 64;
    double g_small = run_sync_allreduce(small).per_worker_goodput_gbps;
    double g_large = run_sync_allreduce(large).per_worker_goodput_gbps;
    EXPECT_GT(g_large, 1.4 * g_small);
}

TEST(SyncIna, MoreWorkersStillCorrect)
{
    SyncInaSpec spec;
    spec.workers = 8;
    spec.grad_elements = 1 << 13;
    spec.slots = 128;
    SyncInaResult r = run_sync_allreduce(spec);
    EXPECT_TRUE(r.correct);
}

}  // namespace
}  // namespace ask::baselines
