/**
 * Chaos-injection tests: scheduled fault episodes against a full ASK
 * deployment. Exactness must survive a mid-task switch reboot (register
 * wipe + region reinstall + fence + replay) and a persistently sick
 * data plane (graceful degradation to host-side aggregation); tasks
 * whose dependencies are truly gone must fail with a clear error
 * instead of hanging.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ask/cluster.h"
#include "common/hash.h"
#include "common/random.h"
#include "sim/chaos.h"

namespace ask::core {
namespace {

using units::kMicrosecond;
using units::kMillisecond;

KvStream
mixed_stream(Rng& rng, std::size_t n, std::size_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(distinct);
        std::size_t len = 1 + id % 12;  // short/medium/long mix
        std::string key;
        std::uint64_t x = mix64(id + 1);
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + (x >> (5 * (j % 12))) % 26));
        s.push_back({key, static_cast<Value>(1 + id % 7)});
    }
    return s;
}

KvStream
short_stream(Rng& rng, std::size_t n, std::size_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        s.push_back({"k" + std::to_string(rng.next_below(distinct)),
                     static_cast<Value>(1 + rng.next_below(5))});
    }
    return s;
}

AggregateMap
truth_of(const std::vector<StreamSpec>& streams, AggOp op)
{
    AggregateMap t;
    for (const auto& s : streams)
        aggregate_into(t, s.stream, op);
    return t;
}

ClusterConfig
base_config()
{
    ClusterConfig cc;
    cc.num_hosts = 3;
    cc.ask.max_hosts = 3;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 2;
    cc.ask.window = 16;
    cc.ask.swap_threshold_packets = 0;
    return cc;
}

std::vector<StreamSpec>
two_streams(std::uint64_t seed, std::size_t n)
{
    Rng rng = seeded_rng("chaos_test", seed);
    return {{1, mixed_stream(rng, n, 60)}, {2, mixed_stream(rng, n, 60)}};
}

/** Dry-run the task on an identical fault-free cluster to learn when it
 *  would finish, so chaos can be aimed at the middle of the run. */
sim::SimTime
undisturbed_finish_time(const ClusterConfig& cc,
                        const std::vector<StreamSpec>& streams)
{
    AskCluster cluster(cc);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_TRUE(r.ok());
    return r.report.finish_time;
}

// ---------------------------------------------------------------------------
// Tentpole scenario 1: the switch crashes mid-task, losing every
// register and its task table. Recovery (reinstall + fence + replay)
// must keep the result exactly-once.
// ---------------------------------------------------------------------------

TEST(Chaos, SwitchRebootMidTaskStaysExact)
{
    ClusterConfig cc = base_config();
    cc.seed = 11;
    std::vector<StreamSpec> streams = two_streams(11, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.switch_reboot(mid, 200 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.switch_reboots, 1u);
    EXPECT_GE(cs.regions_reinstalled, 1u);
    EXPECT_GT(cs.channels_fenced, 0u);
    EXPECT_EQ(cs.tasks_reset, 1u);
    EXPECT_EQ(cs.streams_replayed, 2u);
}

TEST(Chaos, SwitchRebootUnderLossWithSwapsStaysExact)
{
    // Reboot on top of a lossy fabric with shadow-copy swaps enabled:
    // the crash can race retransmissions, in-flight swaps, and fetches.
    ClusterConfig cc = base_config();
    cc.ask.swap_threshold_packets = 32;
    cc.faults = net::FaultSpec::lossy(0.08, 0.04, 0.1);
    cc.seed = 23;
    std::vector<StreamSpec> streams = two_streams(23, 1000);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.switch_reboot(mid, 300 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 1u);
}

TEST(Chaos, TwoRebootsBackToBackStayExact)
{
    ClusterConfig cc = base_config();
    cc.seed = 31;
    std::vector<StreamSpec> streams = two_streams(31, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime finish = undisturbed_finish_time(cc, streams);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.switch_reboot(finish / 3, 150 * kMicrosecond);
    plan.switch_reboot(finish, 150 * kMicrosecond);  // mid-recovery run
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 2u);
    EXPECT_GE(cluster.chaos_stats().streams_replayed, 2u);
}

// ---------------------------------------------------------------------------
// Tentpole scenario 2: the data plane silently eats aggregation traffic
// ("sick program"). The daemon must detect the dead path via its
// retransmission budget and degrade to host-side aggregation — slower,
// still exact.
// ---------------------------------------------------------------------------

TEST(Chaos, DataBlackholeDegradesToHostAggregation)
{
    ClusterConfig cc = base_config();
    cc.ask.max_data_tries = 6;  // detect the dead path quickly
    cc.seed = 41;
    Rng rng = seeded_rng("chaos_test", 41);
    std::vector<StreamSpec> streams{{1, mixed_stream(rng, 300, 40)},
                                    {2, mixed_stream(rng, 300, 40)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    // The data plane is sick from the very start, forever: task setup
    // (management plane) still works, but no DATA is ever aggregated.
    plan.data_blackhole(0, 3600UL * units::kSecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.data_blackholes, 1u);
    EXPECT_GE(cs.degraded_entries, 1u);  // at least one sender fell back
    EXPECT_GT(cluster.switch_stats().blackholed, 0u);
    // Everything after the fallback travels the long-key bypass.
    EXPECT_GT(cluster.total_host_stats().long_packets_sent, 0u);
    EXPECT_GT(cluster.total_host_stats().tuples_aggregated_locally, 0u);
}

TEST(Chaos, TransientBlackholeRecoversAndStaysExact)
{
    // A blackhole shorter than the retransmission budget: senders ride
    // it out with retransmissions and never degrade.
    ClusterConfig cc = base_config();
    cc.seed = 43;
    std::vector<StreamSpec> streams = two_streams(43, 600);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    // Covers the data phase (senders start streaming at ~70us: mgmt
    // setup plus the task notification) but is far shorter than the
    // retransmission budget.
    plan.data_blackhole(0, 300 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.switch_stats().blackholed, 0u);
    EXPECT_EQ(cluster.chaos_stats().degraded_entries, 0u);
}

// ---------------------------------------------------------------------------
// Link episodes: blackouts and burst loss delay but never corrupt.
// ---------------------------------------------------------------------------

TEST(Chaos, LinkEpisodesStayExact)
{
    ClusterConfig cc = base_config();
    cc.seed = 53;
    std::vector<StreamSpec> streams = two_streams(53, 1000);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime finish = undisturbed_finish_time(cc, streams);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.link_blackout(finish / 4, 400 * kMicrosecond, /*host=*/1);
    plan.burst_loss(finish / 2, 600 * kMicrosecond, /*host=*/2, 0.5);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().link_blackouts, 1u);
    EXPECT_EQ(cluster.chaos_stats().burst_loss_windows, 1u);
}

TEST(Chaos, RandomizedPlanOnLossyFabricStaysExact)
{
    ClusterConfig cc = base_config();
    cc.faults = net::FaultSpec::lossy(0.05, 0.02, 0.1);
    cc.ask.swap_threshold_packets = 48;
    cc.seed = 67;

    std::vector<StreamSpec> streams = two_streams(67, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    AskCluster cluster(cc);
    cluster.arm_chaos(sim::ChaosPlan::randomized(
        /*seed=*/67, /*horizon=*/50 * kMillisecond, /*episodes=*/12,
        /*num_hosts=*/cc.num_hosts, /*mean_duration=*/200 * kMicrosecond,
        /*intensity=*/0.4));

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
}

// ---------------------------------------------------------------------------
// Management-plane episodes: retry with backoff, bounded give-up.
// ---------------------------------------------------------------------------

TEST(Chaos, MgmtOutageIsRiddenOutByRetries)
{
    ClusterConfig cc = base_config();
    cc.seed = 71;
    Rng rng = seeded_rng("chaos_test", 71);
    std::vector<StreamSpec> streams{{1, mixed_stream(rng, 300, 40)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    // The outage covers task setup; retries with backoff outlast it.
    plan.mgmt_outage(0, 500 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.chaos_stats().mgmt_retries, 0u);
    EXPECT_EQ(cluster.chaos_stats().mgmt_giveups, 0u);
}

TEST(Chaos, PermanentMgmtOutageFailsSetupWithClearError)
{
    ClusterConfig cc = base_config();
    cc.ask.mgmt_max_tries = 4;
    cc.ask.mgmt_backoff_cap_ns = 100 * kMicrosecond;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.mgmt_outage(0, 3600UL * units::kSecond);
    cluster.arm_chaos(plan);

    Rng rng = seeded_rng("chaos_test", 73);
    TaskReport report;
    bool done = false;
    cluster.submit_task(1, 0, {{1, mixed_stream(rng, 100, 20)}}, {},
                        [&](AggregateMap, TaskReport rep) {
                            report = std::move(rep);
                            done = true;
                        });
    cluster.run();
    ASSERT_TRUE(done);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status, TaskStatus::kMgmtUnreachable) << report.detail;
    EXPECT_GE(cluster.chaos_stats().mgmt_giveups, 1u);
}

// ---------------------------------------------------------------------------
// Satellite: region exhaustion propagates to the application.
// ---------------------------------------------------------------------------

TEST(Chaos, RegionExhaustionFailsSecondTask)
{
    ClusterConfig cc = base_config();
    cc.seed = 83;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("chaos_test", 83);
    std::vector<StreamSpec> s1{{1, mixed_stream(rng, 400, 50)}};
    AggregateMap truth = truth_of(s1, AggOp::kAdd);

    TaskResult first;
    TaskReport second;
    bool second_done = false;
    // Task 1 claims the whole free pool (region_len = 0); task 2 then
    // asks for 32 aggregators/AA while nothing is free.
    cluster.submit_task(1, 0, s1, {},
                        [&](AggregateMap m, TaskReport rep) {
                            first.result = std::move(m);
                            first.report = std::move(rep);
                        });
    cluster.submit_task(2, 1, {{2, mixed_stream(rng, 100, 20)}},
                        {.region_len = 32},
                        [&](AggregateMap, TaskReport rep) {
                            second = std::move(rep);
                            second_done = true;
                        });
    cluster.run();

    ASSERT_TRUE(first.ok()) << first.report.detail;
    EXPECT_EQ(first.result, truth);
    ASSERT_TRUE(second_done);
    EXPECT_FALSE(second.ok());
    EXPECT_EQ(second.status, TaskStatus::kRegionExhausted) << second.detail;
    EXPECT_EQ(cluster.chaos_stats().alloc_failures, 1u);
}

// ---------------------------------------------------------------------------
// Satellite: a dead sender fails the receive task within the liveness
// timeout instead of hanging forever.
// ---------------------------------------------------------------------------

TEST(Chaos, DeadSenderFailsReceiverByLivenessTimeout)
{
    ClusterConfig cc = base_config();
    cc.ask.sender_liveness_timeout_ns = 5 * kMillisecond;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("chaos_test", 91);
    KvStream stream = mixed_stream(rng, 200, 30);

    TaskReport report;
    bool done = false;
    AskDaemon& rx = cluster.daemon(0);
    // The receiver expects two senders but only one ever streams.
    rx.start_receive(
        1, /*expected_senders=*/2, {},
        [&](AggregateMap, TaskReport rep) {
            report = std::move(rep);
            done = true;
        },
        [&] { cluster.daemon(1).submit_send(1, rx.node_id(), stream); });
    sim::SimTime end = cluster.run();

    ASSERT_TRUE(done);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status, TaskStatus::kSenderTimeout) << report.detail;
    EXPECT_EQ(cluster.chaos_stats().sender_timeouts, 1u);
    // It failed within (roughly) the timeout, not after hours of FIN
    // retries: the last activity is the lone sender's final packet.
    EXPECT_LT(end, 60 * kMillisecond);
}

// ---------------------------------------------------------------------------
// Satellite: the FIN retransmission budget is configurable and failing
// it reports the task instead of retrying forever.
// ---------------------------------------------------------------------------

TEST(Chaos, FinBudgetFailsSenderWhenReceiverIsGone)
{
    ClusterConfig cc = base_config();
    cc.ask.max_fin_tries = 5;
    cc.ask.sender_liveness_timeout_ns = 20 * kMillisecond;
    AskCluster cluster(cc);

    Rng rng = seeded_rng("chaos_test", 97);
    // Short keys only: the switch consumes every tuple and impersonates
    // the ACKs, so DATA completes even with the receiver dark — only
    // the FIN needs the receiver.
    KvStream stream = short_stream(rng, 200, 8);

    TaskStatus sender_status = TaskStatus::kOk;
    std::string sender_detail;
    cluster.daemon(1).set_task_failure_handler(
        [&](TaskId, TaskStatus status, const std::string& reason) {
            sender_status = status;
            sender_detail = reason;
        });

    sim::ChaosPlan plan;
    // The receiver's cable is dark from the start. Task setup and the
    // sender notification use the management/control path, so streaming
    // still begins.
    plan.link_blackout(0, 3600UL * units::kSecond, /*host=*/0);
    cluster.arm_chaos(plan);

    TaskReport report;
    bool done = false;
    cluster.submit_task(1, 0, {{1, stream}}, {},
                        [&](AggregateMap, TaskReport rep) {
                            report = std::move(rep);
                            done = true;
                        });
    cluster.run();

    ASSERT_TRUE(done);
    EXPECT_FALSE(report.ok());  // liveness timeout at the receiver
    EXPECT_EQ(sender_status, TaskStatus::kSendBudgetExhausted)
        << sender_detail;
    EXPECT_EQ(cluster.chaos_stats().fin_giveups, 1u);
}

// ---------------------------------------------------------------------------
// Kitchen sink: every episode kind in one run, exactness holds.
// ---------------------------------------------------------------------------

TEST(Chaos, EverythingEverywhereStaysExact)
{
    ClusterConfig cc = base_config();
    cc.faults = net::FaultSpec::lossy(0.03, 0.01, 0.05);
    cc.seed = 101;
    std::vector<StreamSpec> streams = two_streams(101, 1500);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime finish = undisturbed_finish_time(cc, streams);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.burst_loss(finish / 6, 200 * kMicrosecond, 1, 0.4);
    plan.mgmt_delay(finish / 5, 2 * kMillisecond,
                    /*extra=*/100 * kMicrosecond);
    plan.switch_reboot(finish / 2, 250 * kMicrosecond);
    plan.link_blackout(finish * 3 / 4, 300 * kMicrosecond, 2);
    plan.mgmt_outage(finish * 5 / 6, 200 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.switch_reboots, 1u);
    EXPECT_EQ(cs.mgmt_delay_windows, 1u);
    EXPECT_EQ(cs.burst_loss_windows, 1u);
}

// ---------------------------------------------------------------------------
// Host durability: crash a host process mid-task; the WAL rebuild plus
// re-fencing must keep the delivered aggregate exactly-once.
// ---------------------------------------------------------------------------

TEST(Chaos, ReceiverCrashMidTaskRecoversExactly)
{
    ClusterConfig cc = base_config();
    cc.seed = 103;
    std::vector<StreamSpec> streams = two_streams(103, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.host_crash(mid, 300 * kMicrosecond, /*host=*/0);  // the receiver
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.host_crashes, 1u);
    EXPECT_EQ(cs.host_recoveries, 1u);
    EXPECT_EQ(cs.wal_rejected, 0u);
    EXPECT_GT(cs.wal_appends, 0u);
    // The WAL is intact after the run and shows the recovery marker.
    EXPECT_TRUE(cluster.wal_store().host_wal(0).verify());
}

TEST(Chaos, SenderCrashMidTaskReplaysAndStaysExact)
{
    ClusterConfig cc = base_config();
    cc.seed = 107;
    std::vector<StreamSpec> streams = two_streams(107, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.host_crash(mid, 300 * kMicrosecond, /*host=*/1);  // a sender
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.host_crashes, 1u);
    EXPECT_EQ(cs.host_recoveries, 1u);
    // A sender lost its in-flight accounting: exactness was
    // re-established by the cluster-wide replay reset.
    EXPECT_GE(cs.streams_replayed, 1u);
    EXPECT_GE(cs.tasks_reset, 1u);
}

TEST(Chaos, ReceiverCrashWithSwapsAndLossStaysExact)
{
    // Crash the receiver while shadow-copy swaps are in play on a lossy
    // fabric: recovery must reconcile a swap the switch may have
    // advanced past the last committed epoch in the WAL.
    ClusterConfig cc = base_config();
    cc.ask.swap_threshold_packets = 24;
    cc.faults = net::FaultSpec::lossy(0.05, 0.02, 0.08);
    cc.seed = 109;
    std::vector<StreamSpec> streams = two_streams(109, 1000);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.host_crash(mid, 200 * kMicrosecond, /*host=*/0);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().host_recoveries, 1u);
}

TEST(Chaos, ControllerCrashMidTaskStaysExact)
{
    ClusterConfig cc = base_config();
    cc.seed = 113;
    std::vector<StreamSpec> streams = two_streams(113, 1200);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.controller_crash(mid, 500 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.controller_crashes, 1u);
    EXPECT_EQ(cs.controller_recoveries, 1u);
    EXPECT_TRUE(cluster.wal_store().controller_wal().verify());
}

TEST(Chaos, ControllerCrashThenSwitchRebootStaysExact)
{
    // The reboot's reinstall runs against a down controller; the
    // controller's own recovery must restore the missing installs.
    ClusterConfig cc = base_config();
    cc.seed = 127;
    std::vector<StreamSpec> streams = two_streams(127, 1500);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime finish = undisturbed_finish_time(cc, streams);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.controller_crash(finish / 3, 500 * kMicrosecond);
    plan.switch_reboot(finish / 3 + 100 * kMicrosecond,
                       200 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().controller_recoveries, 1u);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 1u);
}

TEST(Chaos, CrashPlansLeaveNoUnhandledEvents)
{
    // Satellite: with the full cluster wiring armed, every chaos kind —
    // including the crash/restart events — must reach a handler.
    ClusterConfig cc = base_config();
    cc.seed = 131;
    std::vector<StreamSpec> streams = two_streams(131, 800);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.host_crash(mid, 200 * kMicrosecond, 1);
    plan.controller_crash(mid + 400 * kMicrosecond, 300 * kMicrosecond);
    plan.mgmt_outage(mid / 2, 100 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    ASSERT_NE(cluster.fault_scheduler(), nullptr);
    EXPECT_EQ(cluster.fault_scheduler()->unhandled_events(), 0u);
    EXPECT_EQ(cluster.chaos_stats().unhandled_events, 0u);
}

TEST(Chaos, CorruptWalAbortsTaskWithHostCrashedStatus)
{
    // Crash the receiver, then damage its log before the restart: the
    // replay must reject the log (typed error, no UB) and fail the
    // task with kHostCrashed instead of rebuilding silently-wrong
    // state.
    ClusterConfig cc = base_config();
    cc.seed = 137;
    std::vector<StreamSpec> streams = two_streams(137, 1000);
    sim::SimTime mid = undisturbed_finish_time(cc, streams) / 2;

    AskCluster cluster(cc);
    TaskReport report;
    bool done = false;
    cluster.submit_task(1, 0, streams, {},
                        [&](AggregateMap, TaskReport rep) {
                            report = std::move(rep);
                            done = true;
                        });
    cluster.simulator().schedule_at(mid, [&] {
        cluster.crash_host(0);
        // Media corruption inside the first journaled record.
        cluster.wal_store().host_wal(0).flip_byte(10);
        cluster.restart_host(0);
    });
    cluster.run();

    ASSERT_TRUE(done);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status, TaskStatus::kHostCrashed) << report.detail;
    ChaosStats cs = cluster.chaos_stats();
    EXPECT_EQ(cs.wal_rejected, 1u);
    EXPECT_GE(cs.crash_aborted_tasks, 1u);
}

TEST(Chaos, CrashAfterDrainRecoversToEmptyState)
{
    // A crash landing after the task finished must recover cleanly from
    // a log whose every task reached its done record.
    ClusterConfig cc = base_config();
    cc.seed = 139;
    std::vector<StreamSpec> streams = two_streams(139, 400);
    AggregateMap truth = truth_of(streams, AggOp::kAdd);
    sim::SimTime finish = undisturbed_finish_time(cc, streams);

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.host_crash(finish * 2, 100 * kMicrosecond, 0);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().host_recoveries, 1u);

    WalDaemonState state = rebuild_daemon_state(
        cluster.wal_store().host_wal(0).replay(), cc.ask.op);
    EXPECT_TRUE(state.rx_tasks.empty());
    EXPECT_TRUE(state.sends.empty());
    EXPECT_EQ(state.recoveries, 1u);
}

}  // namespace
}  // namespace ask::core
