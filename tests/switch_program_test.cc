/**
 * Data-plane tests of the ASK switch program: packets are injected
 * directly into the switch and the emissions + register state checked.
 * Covers vectorized aggregation (§3.2.1), sender-assisted addressing
 * (§3.2.2), coalesced medium keys (§3.2.3), the reliability mechanism
 * (§3.3), and shadow-copy swapping (§3.4).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "ask/controller.h"
#include "ask/packet_builder.h"
#include "common/random.h"
#include "ask/switch_program.h"
#include "ask/wire.h"
#include "net/network.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"

namespace ask::core {
namespace {

class SinkNode : public net::Node
{
  public:
    void receive(net::Packet pkt) override { received.push_back(std::move(pkt)); }
    std::string name() const override { return "sink"; }
    std::vector<net::Packet> received;
};

AskConfig
test_config()
{
    AskConfig c;
    c.num_aas = 8;
    c.aggregators_per_aa = 64;  // 32 per shadow copy
    c.medium_groups = 2;
    c.medium_segments = 2;
    c.window = 8;
    c.max_hosts = 4;
    c.channels_per_host = 2;
    c.max_tasks = 4;
    c.swap_threshold_packets = 0;  // swaps driven explicitly in tests
    return c;
}

class SwitchProgramTest : public ::testing::Test
{
  protected:
    SwitchProgramTest()
        : network_(simulator_),
          sw_(network_, 16, pisa::kDefaultStageSramBytes),
          config_(test_config()),
          program_(config_, sw_),
          controller_(program_),
          key_space_(config_)
    {
        network_.attach(&sw_);
        network_.attach(&sender_);
        network_.attach(&receiver_);
        network_.connect(sender_.node_id(), sw_.node_id(), 100.0, 10);
        network_.connect(receiver_.node_id(), sw_.node_id(), 100.0, 10);
        region_ = *controller_.allocate(kTask, 32);
    }

    static constexpr TaskId kTask = 7;
    static constexpr ChannelId kChannel = 3;

    /** Build a DATA frame for `tuples` (must fit one packet). */
    net::Packet
    data_packet(const KvStream& tuples, Seq seq)
    {
        PacketBuilder builder(key_space_);
        builder.enqueue(tuples);
        auto built = builder.next_data();
        EXPECT_TRUE(built.has_value());
        EXPECT_FALSE(builder.has_data()) << "tuples did not fit one packet";

        AskHeader hdr;
        hdr.type = PacketType::kData;
        hdr.num_slots = static_cast<std::uint8_t>(config_.num_aas);
        hdr.op = op_;
        hdr.channel_id = kChannel;
        hdr.task_id = kTask;
        hdr.seq = seq;
        hdr.bitmap = built->bitmap;

        net::Packet pkt;
        pkt.src = sender_.node_id();
        pkt.dst = receiver_.node_id();
        pkt.data = make_frame(hdr, config_.payload_bytes());
        for (std::uint32_t i = 0; i < config_.num_aas; ++i) {
            if (built->bitmap & (1ULL << i))
                write_slot(pkt.data, i, built->slots[i]);
        }
        return pkt;
    }

    /** Inject a packet and drain the simulator. */
    void
    inject(net::Packet pkt)
    {
        network_.send(pkt.src == sender_.node_id() ? sender_.node_id()
                                                   : receiver_.node_id(),
                      sw_.node_id(), std::move(pkt));
        simulator_.run();
    }

    /** Aggregate all register contents of the task into a map. */
    AggregateMap
    switch_contents()
    {
        AggregateMap out;
        for (std::uint32_t copy = 0; copy < 2; ++copy) {
            for (const auto& kv :
                 program_.read_region(kTask, copy, /*clear=*/false))
                accumulate(out, kv.key, kv.value, op_);
        }
        return out;
    }

    sim::Simulator simulator_;
    net::Network network_;
    pisa::PisaSwitch sw_;
    AskConfig config_;
    AskSwitchProgram program_;
    AskSwitchController controller_;
    KeySpace key_space_;
    SinkNode sender_;
    SinkNode receiver_;
    TaskRegion region_;
    /** Op stamped on built DATA frames and used to fold register
     *  contents; tests that reallocate with another op set this too. */
    ReduceOp op_ = ReduceOp::kAdd;
};

TEST_F(SwitchProgramTest, FullyAggregatedPacketIsAckedAndConsumed)
{
    inject(data_packet({{"aa", 1}, {"bb", 2}}, 0));

    // Sender got an ACK with the packet's seq; receiver got nothing.
    ASSERT_EQ(sender_.received.size(), 1u);
    auto ack = parse_header(sender_.received[0].data);
    EXPECT_EQ(ack->type, PacketType::kAck);
    EXPECT_EQ(ack->seq, 0u);
    EXPECT_EQ(ack->channel_id, kChannel);
    EXPECT_TRUE(receiver_.received.empty());

    AggregateMap contents = switch_contents();
    EXPECT_EQ(contents.at("aa"), 1u);
    EXPECT_EQ(contents.at("bb"), 2u);
    EXPECT_EQ(program_.stats().packets_acked, 1u);
    EXPECT_EQ(program_.stats().tuples_aggregated, 2u);
}

TEST_F(SwitchProgramTest, RepeatedKeysSum)
{
    inject(data_packet({{"aa", 1}}, 0));
    inject(data_packet({{"aa", 41}}, 1));
    EXPECT_EQ(switch_contents().at("aa"), 42u);
}

TEST_F(SwitchProgramTest, CollisionForwardsWithUpdatedBitmap)
{
    // Force a collision: region of length 1, so any two distinct keys in
    // the same slot collide at aggregator index 0.
    controller_.release(kTask);
    region_ = *controller_.allocate(kTask, 1);

    // Find two short keys in the same subspace (slot).
    Key k1, k2;
    for (int i = 0; i < 1000 && k2.empty(); ++i) {
        Key k = "k" + std::to_string(i);
        if (key_space_.classify(k) != KeyClass::kShort)
            continue;
        if (k1.empty()) {
            k1 = k;
        } else if (key_space_.short_slot(k) == key_space_.short_slot(k1)) {
            k2 = k;
        }
    }
    ASSERT_FALSE(k2.empty());

    inject(data_packet({{k1, 5}}, 0));  // reserves the aggregator
    sender_.received.clear();
    inject(data_packet({{k2, 9}}, 1));  // collides

    // The second packet was forwarded to the receiver with k2 intact.
    ASSERT_EQ(receiver_.received.size(), 1u);
    auto hdr = parse_header(receiver_.received[0].data);
    std::uint32_t slot = key_space_.short_slot(k2);
    EXPECT_EQ(hdr->bitmap, 1ULL << slot);
    WireSlot ws = read_slot(receiver_.received[0].data, slot);
    EXPECT_EQ(KeySpace::unpad(key_space_.decode_segment(ws.seg)), k2);
    EXPECT_EQ(ws.value, 9u);
    EXPECT_TRUE(sender_.received.empty());
    EXPECT_EQ(program_.stats().tuples_collided, 1u);
}

TEST_F(SwitchProgramTest, RetransmitOfAggregatedPacketDedups)
{
    net::Packet pkt = data_packet({{"aa", 10}}, 0);
    inject(pkt);
    inject(pkt);  // identical retransmission

    // No double aggregation; two ACKs (one per appearance).
    EXPECT_EQ(switch_contents().at("aa"), 10u);
    EXPECT_EQ(sender_.received.size(), 2u);
    EXPECT_EQ(program_.stats().duplicates, 1u);
}

TEST_F(SwitchProgramTest, RetransmitOfPartialPacketReplaysBitmap)
{
    controller_.release(kTask);
    region_ = *controller_.allocate(kTask, 1);

    // Two keys in different slots; make one of them collide by
    // pre-seeding its aggregator with a different key.
    Key k_ok, k_clash_a, k_clash_b;
    for (int i = 0; i < 2000; ++i) {
        Key k = "q" + std::to_string(i);
        if (key_space_.classify(k) != KeyClass::kShort)
            continue;
        if (k_clash_a.empty()) {
            k_clash_a = k;
            continue;
        }
        bool same = key_space_.short_slot(k) == key_space_.short_slot(k_clash_a);
        if (same && k_clash_b.empty())
            k_clash_b = k;
        if (!same && k_ok.empty())
            k_ok = k;
        if (!k_clash_b.empty() && !k_ok.empty())
            break;
    }
    ASSERT_FALSE(k_clash_b.empty());
    ASSERT_FALSE(k_ok.empty());

    inject(data_packet({{k_clash_a, 1}}, 0));  // occupies the slot's aggregator
    receiver_.received.clear();

    // This packet is partially aggregated: k_ok consumed, k_clash_b not.
    net::Packet partial = data_packet({{k_ok, 3}, {k_clash_b, 4}}, 1);
    inject(partial);
    ASSERT_EQ(receiver_.received.size(), 1u);
    auto first_fwd = parse_header(receiver_.received[0].data);

    // Retransmit it (as if the forwarded copy was lost): the switch must
    // not re-aggregate k_ok, and must forward the same remaining bitmap.
    inject(partial);
    ASSERT_EQ(receiver_.received.size(), 2u);
    auto second_fwd = parse_header(receiver_.received[1].data);
    EXPECT_EQ(second_fwd->bitmap, first_fwd->bitmap);
    EXPECT_EQ(switch_contents().at(k_ok), 3u);  // aggregated exactly once
    EXPECT_EQ(program_.stats().duplicates, 1u);
}

TEST_F(SwitchProgramTest, StalePacketDropped)
{
    std::uint32_t w = config_.window;
    for (Seq s = 0; s <= w; ++s)
        inject(data_packet({{"aa", 1}}, s));
    sender_.received.clear();
    receiver_.received.clear();

    // A packet from before the window: dropped silently.
    inject(data_packet({{"aa", 100}}, 0));
    EXPECT_TRUE(sender_.received.empty());
    EXPECT_TRUE(receiver_.received.empty());
    EXPECT_EQ(program_.stats().stale_dropped, 1u);
    EXPECT_EQ(switch_contents().at("aa"), w + 1u);
}

TEST_F(SwitchProgramTest, MediumKeyCoalescedAggregation)
{
    inject(data_packet({{"yourself", 4}}, 0));
    inject(data_packet({{"yourself", 6}}, 1));
    AggregateMap contents = switch_contents();
    EXPECT_EQ(contents.at("yourself"), 10u);
    // The key occupies aggregators in its group's AAs, not short AAs.
    EXPECT_EQ(program_.stats().tuples_aggregated, 2u);
}

TEST_F(SwitchProgramTest, MediumKeySegmentsAreNotConfusable)
{
    // The naive independent-segment design would falsely aggregate
    // X1Y2 after X1X2 and Y1Y2 reserved aggregators (§3.2.3). Force all
    // keys to index 0 with a region of length 1 and check the coalesced
    // design rejects the chimera key.
    controller_.release(kTask);
    region_ = *controller_.allocate(kTask, 1);

    // Construct keys in the SAME medium group: brute-force suffixes.
    auto find_in_group = [&](std::uint32_t group, const std::string& prefix) {
        for (int i = 0; i < 10000; ++i) {
            Key k = prefix + std::to_string(i);
            k.resize(8, 'z');
            if (key_space_.classify(k) == KeyClass::kMedium &&
                key_space_.medium_group(k) == group)
                return k;
        }
        ADD_FAILURE() << "no key found in group";
        return Key("deadbeef");
    };
    Key x = find_in_group(0, "xxxx");
    // Chimera: first segment of x, different second segment, landing in
    // the same medium group (brute-force the suffix).
    Key chimera;
    for (int i = 0; i < 10000 && chimera.empty(); ++i) {
        Key c = x.substr(0, 4) + std::to_string(i);
        c.resize(8, 'Q');
        if (c != x && key_space_.classify(c) == KeyClass::kMedium &&
            key_space_.medium_group(c) == 0)
            chimera = c;
    }
    ASSERT_FALSE(chimera.empty());

    inject(data_packet({{x, 5}}, 0));
    receiver_.received.clear();
    inject(data_packet({{chimera, 7}}, 1));

    // The chimera must NOT merge into x: forwarded to the receiver.
    AggregateMap contents = switch_contents();
    EXPECT_EQ(contents.at(x), 5u);
    EXPECT_FALSE(contents.count(chimera));
    ASSERT_EQ(receiver_.received.size(), 1u);
}

TEST_F(SwitchProgramTest, BatchedPassMatchesPerTupleReference)
{
    // The batched DATA pass (read_slots once, bit-iterate set slots)
    // must behave exactly like a per-tuple walk. The reference below
    // models the switch registers tuple by tuple through the public
    // KeySpace API alone — same addressing, reservation, and collision
    // rules — and every injected packet's verdict (ACK vs forward, the
    // forwarded bitmap) plus the final register contents must match it
    // bit for bit. Runs with a power-of-two region (mask reduction
    // path) and a non-power-of-two region (modulo path), over full,
    // partial, and blank-slot packets with retransmissions — and under
    // every distinct ALU combine (add covers count/float, whose combine
    // is the same wrapping add; max and min exercise the comparisons).
    Rng rng = seeded_rng("switch_program_equiv", 11);
    Seq seq = 0;

    const std::pair<ReduceOp, std::uint32_t> variants[] = {
        {ReduceOp::kAdd, 2u}, {ReduceOp::kAdd, 3u},
        {ReduceOp::kMax, 2u}, {ReduceOp::kMin, 3u}};
    for (const auto& [op, region_len] : variants) {
        op_ = op;
        controller_.release(kTask);
        region_ = *controller_.allocate(kTask, region_len, op);

        // Reference register file: (aa slot, flat index) -> (seg, value).
        // kpart == 0 means blank, exactly as on the switch.
        std::map<std::pair<std::uint32_t, std::uint64_t>,
                 std::pair<std::uint32_t, Value>>
            regs;
        AggregateMap expect_agg;

        std::uint32_t short_aas = config_.short_aas();
        std::uint32_t m = config_.medium_segments;

        for (int p = 0; p < 60; ++p) {
            // Random tuples, at most one per short slot / medium group
            // so they fit one packet; sometimes only one tuple (blank-
            // heavy packet), sometimes enough to fill every slot.
            KvStream tuples;
            std::vector<bool> slot_used(short_aas, false);
            std::vector<bool> group_used(config_.medium_groups, false);
            std::uint64_t want = 1 + rng.next_below(8);
            std::map<std::uint32_t, Key> short_keys;   // slot -> key
            std::map<std::uint32_t, Key> medium_keys;  // group -> key
            for (int tries = 0; tries < 200 && tuples.size() < want;
                 ++tries) {
                std::size_t len = 1 + rng.next_below(8);
                Key key(len, 'a');
                for (auto& ch : key)
                    ch = static_cast<char>('a' + rng.next_below(26));
                Value val = static_cast<Value>(1 + rng.next_below(100));
                if (key_space_.classify(key) == KeyClass::kShort) {
                    std::uint32_t s = key_space_.short_slot(key);
                    if (slot_used[s])
                        continue;
                    slot_used[s] = true;
                    short_keys[s] = key;
                    tuples.push_back({key, val});
                } else if (key_space_.classify(key) == KeyClass::kMedium) {
                    std::uint32_t g = key_space_.medium_group(key);
                    if (group_used[g])
                        continue;
                    group_used[g] = true;
                    medium_keys[g] = key;
                    tuples.push_back({key, val});
                }
            }
            ASSERT_FALSE(tuples.empty());

            net::Packet pkt = data_packet(tuples, seq);
            auto hdr = parse_header(pkt.data);
            ASSERT_TRUE(hdr.has_value());

            // ---- per-tuple reference pass over the built packet ------
            std::uint64_t expect_bitmap = hdr->bitmap;
            for (const auto& [slot, key] : short_keys) {
                WireSlot ws = read_slot(pkt.data, slot);
                std::uint64_t idx =
                    region_.base +
                    key_space_.short_aggregator_index(ws.seg, region_.len);
                auto& cell = regs[{slot, idx}];
                if (cell.first == 0) {
                    cell = {ws.seg, ws.value};
                } else if (cell.first == ws.seg) {
                    cell.second = apply_op(op, cell.second, ws.value);
                } else {
                    continue;  // collision: the bit stays set
                }
                expect_bitmap &= ~(1ULL << slot);
                accumulate(expect_agg, key, ws.value, op);
            }
            for (const auto& [group, key] : medium_keys) {
                std::string padded = key_space_.padded(key);
                std::uint64_t idx =
                    region_.base +
                    key_space_.aggregator_index(padded, region_.len);
                std::uint32_t mb = config_.medium_base(group);
                // Group invariant: segments at one index are installed
                // atomically, so they are all blank or all this key's.
                bool blank = regs[{mb, idx}].first == 0;
                bool match = true;
                for (std::uint32_t j = 0; j < m; ++j) {
                    if (regs[{mb + j, idx}].first !=
                        key_space_.encode_segment(padded, j))
                        match = false;
                }
                Value val = read_slot(pkt.data, mb + m - 1).value;
                if (blank) {
                    for (std::uint32_t j = 0; j < m; ++j) {
                        regs[{mb + j, idx}] = {
                            key_space_.encode_segment(padded, j),
                            j + 1 == m ? val : 0};
                    }
                } else if (match) {
                    auto& value_cell = regs[{mb + m - 1, idx}];
                    value_cell.second = apply_op(op, value_cell.second, val);
                } else {
                    continue;  // collision: the whole group stays set
                }
                for (std::uint32_t j = 0; j < m; ++j)
                    expect_bitmap &= ~(1ULL << (mb + j));
                accumulate(expect_agg, key, val, op);
            }

            // ---- inject (plus an occasional retransmission) ----------
            int sends = (p % 5 == 0) ? 2 : 1;
            for (int s = 0; s < sends; ++s) {
                sender_.received.clear();
                receiver_.received.clear();
                inject(pkt);
                if (expect_bitmap == 0) {
                    ASSERT_EQ(sender_.received.size(), 1u)
                        << "packet " << p << " send " << s;
                    EXPECT_EQ(parse_header(sender_.received[0].data)->type,
                              PacketType::kAck);
                    EXPECT_TRUE(receiver_.received.empty());
                } else {
                    ASSERT_EQ(receiver_.received.size(), 1u)
                        << "packet " << p << " send " << s;
                    EXPECT_EQ(parse_header(receiver_.received[0].data)->bitmap,
                              expect_bitmap)
                        << "packet " << p << " send " << s;
                    EXPECT_TRUE(sender_.received.empty());
                }
            }
            ++seq;
        }

        // ---- final register contents match the reference -------------
        EXPECT_EQ(switch_contents(), expect_agg)
            << reduce_op_name(op) << " region_len " << region_len;
    }
    op_ = ReduceOp::kAdd;
}

TEST_F(SwitchProgramTest, PerOpSwitchMergeMatchesHostFold)
{
    // Same shape of repeated-key packets under every operator: the
    // switch's blank-install-then-combine must equal a plain host-side
    // accumulate fold of the (already lifted) values. Seq keeps
    // increasing across ops — the seen window is per channel, not per
    // task, so it survives the release/reallocate cycles.
    Seq seq = 0;
    const std::uint32_t frac = config_.float_frac_bits;
    for (ReduceOp op : {ReduceOp::kAdd, ReduceOp::kMax, ReduceOp::kMin,
                        ReduceOp::kCount, ReduceOp::kFloat}) {
        controller_.release(kTask);
        region_ = *controller_.allocate(kTask, 32, op);
        op_ = op;

        // The sender lifts exactly once, so the switch only ever sees
        // lifted values: count observations arrive as 1, float values
        // as Q-format words — including a negative one, which the
        // wrapping two's-complement add must cancel exactly.
        std::vector<KvStream> packets;
        if (op == ReduceOp::kCount) {
            packets = {{{"aa", 1}, {"bb", 1}}, {{"aa", 1}}, {{"aa", 1}}};
        } else if (op == ReduceOp::kFloat) {
            packets = {{{"aa", float_encode(2.5, frac)}},
                       {{"aa", float_encode(-1.25, frac)},
                        {"bb", float_encode(0.5, frac)}}};
        } else {
            packets = {{{"aa", 7}, {"bb", 3}}, {{"aa", 41}}, {{"bb", 3}}};
        }

        AggregateMap expect;
        for (const auto& stream : packets) {
            merge_stream_into(expect, stream, op);
            inject(data_packet(stream, seq++));
        }
        EXPECT_EQ(switch_contents(), expect) << reduce_op_name(op);
        if (op == ReduceOp::kFloat) {
            EXPECT_EQ(float_decode(switch_contents().at("aa"), frac), 1.25);
        }
    }
    op_ = ReduceOp::kAdd;
}

TEST_F(SwitchProgramTest, OpMismatchDroppedBeforeWindow)
{
    // A DATA frame whose op id contradicts the task's bound operator is
    // dropped before the seen window observes its seq: no ACK, no
    // forward — and a correct-op frame with the SAME seq afterwards
    // still aggregates (the mismatch left no reliability state behind).
    op_ = ReduceOp::kMax;
    net::Packet wrong = data_packet({{"aa", 5}}, 0);
    op_ = ReduceOp::kAdd;
    inject(std::move(wrong));
    EXPECT_TRUE(sender_.received.empty());
    EXPECT_TRUE(receiver_.received.empty());
    EXPECT_EQ(program_.stats().op_mismatch, 1u);
    EXPECT_TRUE(switch_contents().empty());

    inject(data_packet({{"aa", 5}}, 0));
    EXPECT_EQ(switch_contents().at("aa"), 5u);
    EXPECT_EQ(program_.stats().duplicates, 0u);
    ASSERT_EQ(sender_.received.size(), 1u);
    EXPECT_EQ(parse_header(sender_.received[0].data)->type,
              PacketType::kAck);
}

TEST(SwitchController, UndeclaredOpRejectedBeforeAllocation)
{
    // 16-bit vParts cannot carry Q-format floats, so the access plan of
    // a part_bits == 16 program does not declare kFloat: asking for it
    // throws ConfigError before any region is journalled or installed,
    // while the declared ops still allocate normally.
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network, 16, pisa::kDefaultStageSramBytes);
    AskConfig cfg = test_config();
    cfg.part_bits = 16;
    AskSwitchProgram program(cfg, sw);
    AskSwitchController ctl(program);

    std::uint32_t free_before = ctl.free_aggregators();
    EXPECT_THROW(ctl.allocate(1, 10, ReduceOp::kFloat), ConfigError);
    EXPECT_EQ(ctl.free_aggregators(), free_before);  // nothing leaked
    EXPECT_TRUE(ctl.allocate(1, 10, ReduceOp::kMin).has_value());
}

TEST(SwitchController, UnknownOpIdRejectedAtInstall)
{
    // The data-plane backstop: an op id outside the access plan's
    // declarations never installs, whatever path produced the region.
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network, 16, pisa::kDefaultStageSramBytes);
    AskConfig cfg = test_config();
    AskSwitchProgram program(cfg, sw);

    TaskRegion region;
    region.len = 4;
    region.op = static_cast<ReduceOp>(9);
    EXPECT_THROW(program.install_task(1, region), ConfigError);
}

TEST_F(SwitchProgramTest, SwapRedirectsWritesToOtherCopy)
{
    inject(data_packet({{"aa", 1}}, 0));
    EXPECT_EQ(program_.read_region(kTask, 0, false).size(), 1u);
    EXPECT_EQ(program_.read_region(kTask, 1, false).size(), 0u);

    // Receiver-initiated swap (epoch 1).
    AskHeader swap;
    swap.type = PacketType::kSwap;
    swap.task_id = kTask;
    swap.seq = 1;
    net::Packet pkt = make_control_packet(receiver_.node_id(),
                                          receiver_.node_id(), swap);
    network_.send(receiver_.node_id(), sw_.node_id(), std::move(pkt));
    simulator_.run();

    // SwapAck came back to the receiver.
    ASSERT_EQ(receiver_.received.size(), 1u);
    auto ack = parse_header(receiver_.received[0].data);
    EXPECT_EQ(ack->type, PacketType::kSwapAck);
    EXPECT_EQ(ack->seq, 1u);
    EXPECT_EQ(program_.current_epoch(kTask), 1u);

    // New writes land in copy 1; copy 0 is untouched.
    inject(data_packet({{"aa", 9}}, 1));
    auto copy0 = program_.read_region(kTask, 0, false);
    auto copy1 = program_.read_region(kTask, 1, false);
    ASSERT_EQ(copy0.size(), 1u);
    ASSERT_EQ(copy1.size(), 1u);
    EXPECT_EQ(copy0[0].value, 1u);
    EXPECT_EQ(copy1[0].value, 9u);
}

TEST_F(SwitchProgramTest, DuplicateSwapIsIdempotent)
{
    AskHeader swap;
    swap.type = PacketType::kSwap;
    swap.task_id = kTask;
    swap.seq = 1;
    for (int i = 0; i < 3; ++i) {
        net::Packet pkt = make_control_packet(receiver_.node_id(),
                                              receiver_.node_id(), swap);
        network_.send(receiver_.node_id(), sw_.node_id(), std::move(pkt));
        simulator_.run();
    }
    // Epoch advanced exactly once despite duplicate SWAPs.
    EXPECT_EQ(program_.current_epoch(kTask), 1u);
    EXPECT_EQ(program_.stats().swaps, 1u);
    EXPECT_EQ(receiver_.received.size(), 3u);  // every SWAP is acked
}

TEST_F(SwitchProgramTest, LongDataForwardedAndSeenMarked)
{
    AskHeader hdr;
    hdr.channel_id = kChannel;
    hdr.task_id = kTask;
    hdr.seq = 0;
    net::Packet pkt;
    pkt.src = sender_.node_id();
    pkt.dst = receiver_.node_id();
    pkt.data = make_long_frame(hdr, {{"a-long-key-over-8-bytes", 3}});

    inject(pkt);
    inject(pkt);  // duplicate

    // Both copies forwarded (receiver dedups); switch counted the dup.
    EXPECT_EQ(receiver_.received.size(), 2u);
    EXPECT_EQ(program_.stats().long_packets, 2u);
    EXPECT_EQ(program_.stats().duplicates, 1u);

    // The LONG_DATA seq occupies the channel seq space: a later DATA
    // packet with the next seq still works (compact-seen parity holds).
    inject(data_packet({{"aa", 1}}, 1));
    EXPECT_EQ(switch_contents().at("aa"), 1u);
}

TEST_F(SwitchProgramTest, UnknownTaskDataForwardedUnaggregated)
{
    AskHeader hdr;
    hdr.type = PacketType::kData;
    hdr.channel_id = kChannel;
    hdr.task_id = 999;  // not installed
    hdr.seq = 0;
    hdr.bitmap = 1;
    net::Packet pkt;
    pkt.src = sender_.node_id();
    pkt.dst = receiver_.node_id();
    pkt.data = make_frame(hdr, config_.payload_bytes());
    write_slot(pkt.data, 0, WireSlot{0x61, 5});

    inject(pkt);
    ASSERT_EQ(receiver_.received.size(), 1u);
    EXPECT_EQ(parse_header(receiver_.received[0].data)->bitmap, 1u);
    EXPECT_EQ(program_.stats().unknown_task, 1u);
}

TEST_F(SwitchProgramTest, AcksAndFinsForwarded)
{
    for (auto type : {PacketType::kAck, PacketType::kFin, PacketType::kFinAck,
                      PacketType::kSwapAck}) {
        AskHeader hdr;
        hdr.type = type;
        net::Packet pkt = make_control_packet(sender_.node_id(),
                                              receiver_.node_id(), hdr);
        receiver_.received.clear();
        inject(pkt);
        ASSERT_EQ(receiver_.received.size(), 1u)
            << "type " << static_cast<int>(type);
    }
}

TEST_F(SwitchProgramTest, ReleaseClearsRegionAndEpoch)
{
    inject(data_packet({{"aa", 1}}, 0));
    controller_.release(kTask);
    auto region = controller_.allocate(kTask, 32);
    ASSERT_TRUE(region.has_value());
    EXPECT_TRUE(program_.read_region(kTask, 0, false).empty());
    EXPECT_TRUE(program_.read_region(kTask, 1, false).empty());
    EXPECT_EQ(program_.current_epoch(kTask), 0u);
}

TEST(SwitchProgramConfig, PaperDefaultsFitDefaultPipeline)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network);
    AskConfig cfg;  // 32 AAs x 32768 aggregators, W=256, 256 channels
    AskSwitchProgram program(cfg, sw);

    // Reliability state per data channel (paper §3.3): 256-bit seen +
    // 256 x 32-bit PktState = 1056 bytes.
    auto* seen = sw.pipeline().find_array("seen");
    auto* pkt_state = sw.pipeline().find_array("pkt_state");
    ASSERT_NE(seen, nullptr);
    ASSERT_NE(pkt_state, nullptr);
    std::size_t per_channel =
        (seen->sram_bytes() + pkt_state->sram_bytes()) / cfg.max_channels();
    EXPECT_EQ(per_channel, 1056u);

    // Total SRAM fits the 16-stage budget with room to spare.
    EXPECT_LE(sw.pipeline().sram_used_bytes(),
              sw.pipeline().sram_budget_bytes());
}

TEST(SwitchProgramConfig, PlainSeenVariantAlsoFits)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network);
    AskConfig cfg;
    cfg.compact_seen = false;
    AskSwitchProgram program(cfg, sw);
    EXPECT_NE(sw.pipeline().find_array("seen_even"), nullptr);
    EXPECT_NE(sw.pipeline().find_array("seen_odd"), nullptr);
    EXPECT_EQ(sw.pipeline().find_array("seen"), nullptr);
}

TEST(SwitchController, AllocateReleaseReuse)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network, 16, pisa::kDefaultStageSramBytes);
    AskConfig cfg = test_config();
    AskSwitchProgram program(cfg, sw);
    AskSwitchController ctl(program);

    std::uint32_t cap = cfg.copy_size();
    EXPECT_EQ(ctl.free_aggregators(), cap);

    auto r1 = ctl.allocate(1, 10);
    auto r2 = ctl.allocate(2, 10);
    ASSERT_TRUE(r1 && r2);
    EXPECT_EQ(ctl.free_aggregators(), cap - 20);
    EXPECT_NE(r1->epoch_slot, r2->epoch_slot);

    // Regions must not overlap.
    EXPECT_TRUE(r1->base + r1->len <= r2->base ||
                r2->base + r2->len <= r1->base);

    ctl.release(1);
    EXPECT_EQ(ctl.free_aggregators(), cap - 10);
    auto r3 = ctl.allocate(3, 10);  // reuses the freed hole
    ASSERT_TRUE(r3);
    EXPECT_EQ(r3->base, r1->base);

    // Exhaustion: asking for more than remains fails cleanly.
    EXPECT_FALSE(ctl.allocate(4, cap).has_value());
}

}  // namespace
}  // namespace ask::core
