/**
 * Tests for the sharded parallel engine (sim/engine.h) and the
 * simulator primitives it is built on. The central claim under test is
 * the determinism contract of docs/CONCURRENCY.md: for a fixed input,
 * every observable result — event traces, timestamps, aggregate maps —
 * is bit-for-bit identical at any thread count, including 1.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ask/cluster.h"
#include "sim/engine.h"
#include "sim/options.h"
#include "sim/simulator.h"

namespace ask::sim {
namespace {

TEST(Simulator, RunBeforeIsStrict)
{
    Simulator s;
    std::vector<int> order;
    s.schedule_at(10, [&] { order.push_back(1); });
    s.schedule_at(20, [&] { order.push_back(2); });
    s.schedule_at(30, [&] { order.push_back(3); });
    s.run_before(30);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    // now() stays at the last executed event, not the window end.
    EXPECT_EQ(s.now(), 20);
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunBeforeIncludesEventsScheduledIntoTheWindow)
{
    Simulator s;
    std::vector<SimTime> fired;
    s.schedule_at(10, [&] {
        fired.push_back(s.now());
        s.schedule_at(15, [&] { fired.push_back(s.now()); });
    });
    s.run_before(20);
    EXPECT_EQ(fired, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, NextEventTimeSkipsCancelledHeads)
{
    Simulator s;
    EventId a = s.schedule_at(5, [] {});
    s.schedule_at(9, [] {});
    s.cancel(a);
    SimTime t = 0;
    ASSERT_TRUE(s.next_event_time(&t));
    EXPECT_EQ(t, 9);

    Simulator drained;
    EXPECT_FALSE(drained.next_event_time(&t));
}

TEST(SimOptions, DefaultIsSequential)
{
    SimOptions options;
    EXPECT_EQ(options.num_threads, 1u);
}

/** The trace one island writes: (event time, tag) in execution order.
 *  Island-confined state — only the worker running the island appends. */
using Trace = std::vector<std::pair<SimTime, int>>;

/**
 * A deterministic multi-island workload: islands pass tokens around a
 * ring via post(), each hop re-tagging and sometimes forking into two
 * tokens, until a hop budget runs out. Returns every island's trace.
 */
std::vector<Trace>
run_ring(unsigned num_threads, std::uint32_t islands, int hops)
{
    SimOptions options;
    options.num_threads = num_threads;
    ParallelEngine engine(options);
    constexpr SimTime kLookahead = 100;
    engine.set_lookahead(kLookahead);

    std::vector<Trace> traces(islands);
    for (std::uint32_t i = 0; i < islands; ++i)
        engine.add_island("island-" + std::to_string(i));

    // The hop handler: record, then forward (and occasionally fork).
    std::function<void(IslandId, int, int)> hop = [&](IslandId at, int tag,
                                                      int remaining) {
        traces[at].push_back({engine.island(at).now(), tag});
        if (remaining == 0)
            return;
        IslandId next = (at + 1) % islands;
        SimTime delay = kLookahead + (tag % 3) * 10;
        engine.post(at, next, delay, [&hop, next, tag, remaining] {
            hop(next, tag + 1, remaining - 1);
        });
        if (tag % 4 == 0) {
            engine.post(at, next, kLookahead * 2,
                        [&hop, next, tag, remaining] {
                            hop(next, tag + 100, remaining - 1);
                        });
        }
    };

    for (std::uint32_t i = 0; i < islands; ++i) {
        engine.island(i).schedule_at(
            static_cast<SimTime>(i) * 7,
            [&hop, i, hops] { hop(i, static_cast<int>(i), hops); });
    }
    engine.run();
    return traces;
}

TEST(ParallelEngine, RingTraceIdenticalAtEveryThreadCount)
{
    std::vector<Trace> reference = run_ring(1, 4, 12);
    ASSERT_FALSE(reference[0].empty());
    for (unsigned threads : {2u, 4u, 8u}) {
        std::vector<Trace> got = run_ring(threads, 4, 12);
        EXPECT_EQ(got, reference) << "thread count " << threads;
    }
}

TEST(ParallelEngine, SingleIslandMatchesPlainSimulator)
{
    // The same program on a plain Simulator and on a 1-island engine
    // (4 threads — a single island still runs alone in its window).
    auto program = [](Simulator& s, std::vector<SimTime>& fired) {
        for (SimTime t : {30, 10, 20, 10})
            s.schedule_at(t, [&s, &fired] { fired.push_back(s.now()); });
    };
    Simulator plain;
    std::vector<SimTime> plain_fired;
    program(plain, plain_fired);
    plain.run();

    SimOptions options;
    options.num_threads = 4;
    ParallelEngine engine(options);
    IslandId only = engine.add_island("only");
    std::vector<SimTime> engine_fired;
    program(engine.island(only), engine_fired);
    SimTime end = engine.run();

    EXPECT_EQ(engine_fired, plain_fired);
    EXPECT_EQ(end, plain.now());
}

TEST(ParallelEngine, RunUntilAdvancesIdleIslands)
{
    SimOptions options;
    options.num_threads = 2;
    ParallelEngine engine(options);
    IslandId a = engine.add_island("a");
    IslandId b = engine.add_island("b");
    bool fired = false;
    engine.island(a).schedule_at(50, [&] { fired = true; });
    SimTime end = engine.run_until(200);
    EXPECT_TRUE(fired);
    EXPECT_EQ(end, 200);
    // Both islands' clocks reach the deadline, mirroring run_until on
    // a plain simulator — island b never had an event at all.
    EXPECT_EQ(engine.island(a).now(), 200);
    EXPECT_EQ(engine.island(b).now(), 200);
}

TEST(ParallelEngine, RunIsolatedFoldsIdenticallyAtEveryThreadCount)
{
    auto campaign = [](unsigned threads) {
        SimOptions options;
        options.num_threads = threads;
        ParallelEngine engine(options);
        std::vector<std::uint64_t> results(64);
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < results.size(); ++i) {
            jobs.push_back([&results, i] {
                // A little simulation per job: independent state only.
                Simulator s;
                std::uint64_t acc = i;
                for (SimTime t = 1; t <= 20; ++t)
                    s.schedule_at(t * 3, [&acc, t] { acc = acc * 31 + t; });
                s.run();
                results[i] = acc;
            });
        }
        engine.run_isolated(jobs);
        return results;
    };
    std::vector<std::uint64_t> reference = campaign(1);
    for (unsigned threads : {2u, 4u})
        EXPECT_EQ(campaign(threads), reference) << "threads " << threads;
}

// ---- whole clusters as islands -------------------------------------------

core::ClusterConfig
small_cluster(std::uint32_t hosts)
{
    core::ClusterConfig cc;
    cc.num_hosts = hosts;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 256;
    cc.ask.medium_groups = 2;
    cc.ask.medium_segments = 2;
    cc.ask.window = 16;
    cc.ask.channels_per_host = 2;
    cc.ask.max_hosts = hosts;
    cc.ask.max_tasks = 8;
    cc.ask.swap_threshold_packets = 0;
    return cc;
}

core::KvStream
counting_stream(std::size_t n, std::uint64_t salt)
{
    core::KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::string key = "k" + std::to_string((i * 7 + salt) % 23);
        s.push_back({key, static_cast<core::Value>(1 + (i + salt) % 5)});
    }
    return s;
}

TEST(ParallelEngine, ClustersOnIslandsMatchStandaloneRuns)
{
    // Reference: each cluster runs alone on its own simulator.
    auto run_standalone = [](std::uint64_t salt) {
        core::AskCluster cluster(small_cluster(3));
        std::vector<core::StreamSpec> streams{
            {1, counting_stream(400, salt)},
            {2, counting_stream(300, salt + 1)}};
        core::TaskResult r = cluster.run_task(1, 0, streams);
        EXPECT_TRUE(r.ok());
        return r.result;
    };
    core::AggregateMap want_a = run_standalone(5);
    core::AggregateMap want_b = run_standalone(9);

    // The same two deployments as replica islands of one engine: the
    // external-simulator constructor registers every cluster event on
    // the island's queue, and the engine drains both in parallel.
    for (unsigned threads : {1u, 2u, 4u}) {
        SimOptions options;
        options.num_threads = threads;
        ParallelEngine engine(options);
        IslandId ia = engine.add_island("cluster-a");
        IslandId ib = engine.add_island("cluster-b");
        core::AskCluster a(small_cluster(3), engine.island(ia));
        core::AskCluster b(small_cluster(3), engine.island(ib));

        core::AggregateMap got_a;
        core::AggregateMap got_b;
        bool done_a = false;
        bool done_b = false;
        a.submit_task(1, 0,
                      {{1, counting_stream(400, 5)},
                       {2, counting_stream(300, 6)}},
                      {},
                      [&](core::AggregateMap result, core::TaskReport) {
                          got_a = std::move(result);
                          done_a = true;
                      });
        b.submit_task(1, 0,
                      {{1, counting_stream(400, 9)},
                       {2, counting_stream(300, 10)}},
                      {},
                      [&](core::AggregateMap result, core::TaskReport) {
                          got_b = std::move(result);
                          done_b = true;
                      });
        engine.run();

        EXPECT_TRUE(done_a && done_b) << "threads " << threads;
        EXPECT_EQ(got_a, want_a) << "threads " << threads;
        EXPECT_EQ(got_b, want_b) << "threads " << threads;
    }
}

}  // namespace
}  // namespace ask::sim
