/** Unit tests for key classification, partition, and segment encoding. */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ask/key_space.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace ask::core {
namespace {

AskConfig
small_config()
{
    AskConfig c;
    c.num_aas = 8;
    c.aggregators_per_aa = 64;
    c.medium_groups = 2;
    c.medium_segments = 2;
    return c;  // 4 short AAs, 2 groups x 2 AAs
}

TEST(KeySpace, ClassifiesByLength)
{
    KeySpace ks(small_config());
    EXPECT_EQ(ks.classify("a"), KeyClass::kShort);
    EXPECT_EQ(ks.classify("abcd"), KeyClass::kShort);
    EXPECT_EQ(ks.classify("abcde"), KeyClass::kMedium);
    EXPECT_EQ(ks.classify("abcdefgh"), KeyClass::kMedium);
    EXPECT_EQ(ks.classify("abcdefghi"), KeyClass::kLong);
}

TEST(KeySpace, NoMediumGroupsMeansLong)
{
    AskConfig c = small_config();
    c.medium_groups = 0;
    KeySpace ks(c);
    EXPECT_EQ(ks.classify("abcde"), KeyClass::kLong);
}

TEST(KeySpace, ShortSlotIsStableAndInRange)
{
    KeySpace ks(small_config());
    for (int i = 0; i < 200; ++i) {
        std::string k = u64_key(static_cast<std::uint64_t>(i));
        if (ks.classify(k) != KeyClass::kShort)
            continue;
        std::uint32_t s1 = ks.short_slot(k);
        std::uint32_t s2 = ks.short_slot(k);
        EXPECT_EQ(s1, s2);
        EXPECT_LT(s1, 4u);
    }
}

TEST(KeySpace, ShortSlotsRoughlyUniform)
{
    KeySpace ks(small_config());
    std::map<std::uint32_t, int> counts;
    int shorts = 0;
    for (int i = 0; i < 4000; ++i) {
        std::string k = "k" + std::to_string(i);
        if (k.size() <= 4) {
            ++counts[ks.short_slot(k)];
            ++shorts;
        }
    }
    for (auto& [slot, n] : counts)
        EXPECT_NEAR(n, shorts / 4.0, shorts / 4.0 * 0.3);
}

TEST(KeySpace, PaddedAndUnpadRoundTrip)
{
    KeySpace ks(small_config());
    EXPECT_EQ(ks.padded("ab").size(), 4u);
    EXPECT_EQ(ks.padded("abcde").size(), 8u);
    EXPECT_EQ(KeySpace::unpad(ks.padded("ab")), "ab");
    EXPECT_EQ(KeySpace::unpad(ks.padded("abcde")), "abcde");
    EXPECT_EQ(KeySpace::unpad(ks.padded("abcdefgh")), "abcdefgh");
}

TEST(KeySpace, SegmentsRoundTripThroughDecode)
{
    KeySpace ks(small_config());
    for (const std::string& key : {"x", "ab", "abcd", "abcde", "abcdefgh"}) {
        auto segs = ks.segments(key);
        std::string rebuilt;
        for (auto s : segs)
            rebuilt += ks.decode_segment(s);
        EXPECT_EQ(KeySpace::unpad(rebuilt), key);
    }
}

TEST(KeySpace, SegmentCountMatchesClass)
{
    KeySpace ks(small_config());
    EXPECT_EQ(ks.segments("ab").size(), 1u);
    EXPECT_EQ(ks.segments("abcdef").size(), 2u);
}

TEST(KeySpace, SegmentsOfRealKeysAreNonZero)
{
    // The data plane uses kPart == 0 as "blank", so no key segment may
    // encode to zero (keys are NUL-free and non-empty).
    KeySpace ks(small_config());
    for (int i = 0; i < 5000; ++i) {
        std::string k = u64_key(static_cast<std::uint64_t>(i) * 2654435761u);
        if (ks.classify(k) == KeyClass::kLong)
            continue;
        for (auto seg : ks.segments(k))
            ASSERT_NE(seg, 0u) << "zero segment for key index " << i;
    }
}

TEST(KeySpace, AggregatorIndexInRangeAndStable)
{
    KeySpace ks(small_config());
    std::string p = ks.padded("word");
    std::uint32_t i1 = ks.aggregator_index(p, 32);
    std::uint32_t i2 = ks.aggregator_index(p, 32);
    EXPECT_EQ(i1, i2);
    EXPECT_LT(i1, 32u);
}

TEST(KeySpace, MediumGroupStable)
{
    KeySpace ks(small_config());
    EXPECT_EQ(ks.medium_group("abcdef"), ks.medium_group("abcdef"));
    EXPECT_LT(ks.medium_group("abcdef"), 2u);
}

TEST(KeySpace, PartitionAndAddressingAreIndependent)
{
    // Keys in the same subspace must not cluster within the AA: the two
    // hash roles use different seeds (common/hash.h).
    AskConfig c = small_config();
    c.medium_groups = 0;  // all 8 AAs short
    KeySpace ks(c);
    std::map<std::uint32_t, std::map<std::uint32_t, int>> index_by_slot;
    for (int i = 0; i < 8000; ++i) {
        std::string k = u64_key(static_cast<std::uint64_t>(i));
        if (ks.classify(k) != KeyClass::kShort)
            continue;
        std::uint32_t slot = ks.short_slot(k);
        std::uint32_t idx = ks.aggregator_index(ks.padded(k), 16);
        ++index_by_slot[slot][idx];
    }
    // Within each slot, indices should cover most of [0,16).
    for (auto& [slot, dist] : index_by_slot)
        EXPECT_GE(dist.size(), 12u) << "slot " << slot << " clustered";
}

TEST(AskConfig, DerivedLayout)
{
    AskConfig c;  // paper defaults
    c.validate();
    EXPECT_EQ(c.short_aas(), 16u);
    EXPECT_EQ(c.medium_aas(), 16u);
    EXPECT_EQ(c.payload_bytes(), 256u);
    EXPECT_EQ(c.copy_size(), 16384u);
    EXPECT_EQ(c.max_medium_key_bytes(), 8u);
    EXPECT_EQ(c.medium_base(0), 16u);
    EXPECT_EQ(c.medium_base(7), 30u);
    EXPECT_EQ(c.max_channels(), 256u);
}

TEST(AskConfig, ShadowDisabledUsesFullArray)
{
    AskConfig c;
    c.shadow_copies = false;
    EXPECT_EQ(c.copy_size(), 32768u);
}

TEST(KeySpace, RejectsEmptyKeyWithTypedError)
{
    KeySpace ks(small_config());
    // A catchable StateError, not process death: a daemon can fail the
    // offending task and keep serving its other channels.
    EXPECT_THROW(
        {
            try {
                ks.classify("");
            } catch (const StateError& e) {
                EXPECT_NE(std::string(e.what()).find("non-empty"),
                          std::string::npos);
                throw;
            }
        },
        StateError);
}

TEST(KeySpace, RejectsNulBytesWithTypedError)
{
    KeySpace ks(small_config());
    std::string bad("a\0b", 3);
    EXPECT_THROW(
        {
            try {
                ks.classify(bad);
            } catch (const StateError& e) {
                EXPECT_NE(std::string(e.what()).find("NUL"),
                          std::string::npos);
                throw;
            }
        },
        StateError);
}

}  // namespace
}  // namespace ask::core
