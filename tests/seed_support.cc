/**
 * @file
 * Seed reporting for test failures.
 *
 * Compiled into every test binary (see the ask_test CMake function). A
 * gtest event listener clears the seed registry before each test and,
 * when the test fails, prints every seed that was drawn through
 * seeded_rng() along with the ASK_SEED replay recipe — so any red ctest
 * log carries the exact seeds needed to reproduce it.
 */
#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"

namespace {

class SeedReporter : public ::testing::EmptyTestEventListener
{
    void
    OnTestStart(const ::testing::TestInfo&) override
    {
        ask::clear_noted_seeds();
    }

    void
    OnTestEnd(const ::testing::TestInfo& info) override
    {
        if (info.result() == nullptr || !info.result()->Failed())
            return;
        const auto& seeds = ask::noted_seeds();
        if (seeds.empty())
            return;
        std::printf("[  SEEDS   ] %s.%s drew:\n", info.test_suite_name(),
                    info.name());
        for (const auto& record : seeds)
            std::printf("[  SEEDS   ]   %s = %llu\n", record.label.c_str(),
                        static_cast<unsigned long long>(record.seed));
        std::printf("[  SEEDS   ] replay with ASK_SEED=<seed> (overrides "
                    "every seeded_rng in the process)\n");
    }
};

/** Registers the listener before main() runs. */
const bool kRegistered = [] {
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new SeedReporter);
    return true;
}();

}  // namespace
