/**
 * Multi-rack fabric tests: each rack's ToR runs an AskSwitchProgram
 * provisioned for its rack's channel shard, and an aggregation-tier
 * switch merges the ToR partial aggregates before delivery (tree
 * aggregation). Exactly-once correctness must hold for intra-rack,
 * cross-rack, and mixed tasks — including through a mid-task ToR
 * reboot — and per-ToR reliability state must stay bounded by the rack
 * size, not the cluster size.
 *
 * Tree roles under test (see AskSwitchProgram::set_tree_leaf): a leaf
 * ToR never consumes a cross-rack packet, even when it absorbed every
 * tuple — it forwards an empty-bitmap residual so the tier observes
 * every sequence number (the seen window is self-cleaning and assumes a
 * gap-free stream). Only the tier — or a ToR whose receiver is directly
 * attached — impersonates the receiver and ACKs.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ask/cluster.h"
#include "ask/topology.h"
#include "common/hash.h"
#include "common/random.h"
#include "sim/chaos.h"

namespace ask::core {
namespace {

using units::kMicrosecond;

KvStream
mixed_stream(Rng& rng, std::size_t n, std::size_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(distinct);
        std::size_t len = 1 + id % 12;  // short/medium/long mix
        std::string key;
        std::uint64_t x = mix64(id + 1);
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + (x >> (5 * (j % 12))) % 26));
        s.push_back({key, static_cast<Value>(1 + id % 7)});
    }
    return s;
}

AggregateMap
truth_of(const std::vector<StreamSpec>& streams, AggOp op)
{
    AggregateMap t;
    for (const auto& s : streams)
        aggregate_into(t, s.stream, op);
    return t;
}

/** 2 racks x 2 hosts: hosts 0,1 behind ToR 0; hosts 2,3 behind ToR 1;
 *  the tier switch is SwitchId{2}. */
ClusterConfig
fabric_config(std::uint64_t seed)
{
    ClusterConfig cc;
    cc.topology = TopologyBuilder().racks(2, 2).build();
    cc.ask.max_hosts = 4;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 2;
    cc.ask.window = 16;
    cc.ask.channels_per_host = 2;
    cc.ask.swap_threshold_packets = 0;
    cc.seed = seed;
    return cc;
}

KvStream
rack_stream(std::uint64_t seed, std::size_t n, std::size_t distinct = 48)
{
    Rng rng = seeded_rng("multirack_test", seed);
    return mixed_stream(rng, n, distinct);
}

constexpr SwitchId kTor0{0};
constexpr SwitchId kTor1{1};
constexpr SwitchId kTier{2};

TEST(MultiRack, TopologyAccessorsDescribeTheFabric)
{
    AskCluster cluster(fabric_config(1));
    EXPECT_EQ(cluster.num_racks(), 2u);
    EXPECT_EQ(cluster.num_switches(), 3u);
    EXPECT_EQ(cluster.num_hosts(), 4u);
    EXPECT_EQ(cluster.rack_of(HostId{1}), RackId{0});
    EXPECT_EQ(cluster.rack_of(HostId{2}), RackId{1});
    EXPECT_EQ(cluster.topology().tier_switch(), kTier);

    // ToRs provision their rack's shard; the tier provisions everything.
    std::uint32_t cph = cluster.config().ask.channels_per_host;
    EXPECT_EQ(cluster.program(kTor0).provisioned_lo(), 0u);
    EXPECT_EQ(cluster.program(kTor0).provisioned_hi(), 2 * cph);
    EXPECT_EQ(cluster.program(kTor1).provisioned_lo(), 2 * cph);
    EXPECT_EQ(cluster.program(kTor1).provisioned_hi(), 4 * cph);
    EXPECT_EQ(cluster.program(kTier).provisioned_lo(), 0u);
    EXPECT_EQ(cluster.program(kTier).provisioned_hi(), 4 * cph);
    EXPECT_TRUE(cluster.program(kTor0).tree_leaf());
    EXPECT_TRUE(cluster.program(kTor1).tree_leaf());
    EXPECT_FALSE(cluster.program(kTier).tree_leaf());
}

TEST(MultiRack, IntraRackTaskAggregatesAndAcksOnItsToR)
{
    AskCluster cluster(fabric_config(2));
    std::vector<StreamSpec> streams = {{HostId{1}, rack_stream(2, 600)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    TaskResult r = cluster.run_task(1, HostId{0}, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    // The receiver is directly attached, so the leaf may consume: the
    // rack-0 ToR aggregated and ACKed locally; the rest of the fabric
    // never saw a DATA packet.
    EXPECT_GT(cluster.switch_stats(kTor0).tuples_aggregated, 0u);
    EXPECT_GT(cluster.switch_stats(kTor0).packets_acked, 0u);
    EXPECT_EQ(cluster.switch_stats(kTor1).data_packets, 0u);
    EXPECT_EQ(cluster.switch_stats(kTier).data_packets, 0u);
}

TEST(MultiRack, CrossRackResidualsDieAtTheTier)
{
    AskCluster cluster(fabric_config(3));
    // Few distinct keys and a roomy region: the sender's ToR absorbs
    // whole packets, which must still reach the tier as residuals.
    std::vector<StreamSpec> streams = {{HostId{2}, rack_stream(3, 600, 24)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    TaskResult r = cluster.run_task(2, HostId{0}, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);

    // The sender's ToR aggregates but never impersonates the receiver.
    EXPECT_GT(cluster.switch_stats(kTor1).tuples_aggregated, 0u);
    EXPECT_EQ(cluster.switch_stats(kTor1).packets_acked, 0u);
    EXPECT_GT(cluster.switch_stats(kTor1).residual_forwarded, 0u);
    // The tier observed every packet and ACKed the fully absorbed ones.
    EXPECT_GT(cluster.switch_stats(kTier).packets_acked, 0u);
    // The receiver's ToR does not provision the sender's channels: it
    // bypass-forwards without recording any reliability state.
    EXPECT_EQ(cluster.switch_stats(kTor0).data_packets, 0u);
    EXPECT_EQ(cluster.switch_stats(kTor0).duplicates, 0u);
}

TEST(MultiRack, TaskReportCarriesTheShardMap)
{
    AskCluster cluster(fabric_config(4));
    std::vector<StreamSpec> streams = {{HostId{1}, rack_stream(4, 300)},
                                       {HostId{3}, rack_stream(5, 300)}};

    TaskResult r = cluster.run_task(3, HostId{0}, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;

    ASSERT_EQ(r.report.shards.size(), 3u);
    std::uint32_t cph = cluster.config().ask.channels_per_host;
    std::uint64_t fetched = 0;
    for (std::uint32_t s = 0; s < 3; ++s) {
        const SwitchShardInfo& shard = r.report.shards[s];
        EXPECT_EQ(shard.switch_id, SwitchId{s});
        EXPECT_EQ(shard.is_tier, s == 2);
        fetched += shard.tuples_fetched;
    }
    EXPECT_EQ(r.report.shards[0].rack, RackId{0});
    EXPECT_EQ(r.report.shards[1].rack, RackId{1});
    EXPECT_EQ(r.report.shards[1].channel_lo, 2 * cph);
    EXPECT_EQ(r.report.shards[1].channel_hi, 4 * cph);
    EXPECT_EQ(r.report.shards[2].channel_hi, 4 * cph);
    // The shard map's fetch tallies are exactly the report's total.
    EXPECT_EQ(fetched, r.report.tuples_fetched_from_switch);
}

TEST(MultiRack, CollidingKeysMergeAtTheTier)
{
    AskCluster cluster(fabric_config(5));
    // A tiny region forces collisions at the ToRs; the collided tuples
    // travel upward and the tier performs a genuine second-level merge.
    std::vector<StreamSpec> streams = {{HostId{1}, rack_stream(6, 500)},
                                       {HostId{2}, rack_stream(7, 500)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    TaskOptions opts;
    opts.region_len = 2;
    TaskResult r = cluster.run_task(4, HostId{0}, streams, opts);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.switch_stats(kTor1).tuples_collided, 0u);
    EXPECT_GT(cluster.switch_stats(kTier).tuples_aggregated, 0u);
}

TEST(MultiRack, MinMaxAcrossRacksMergeWithBoundOp)
{
    // Regression: the ToR residual path and the tier's software merge
    // used to assume '+'. A min/max task spanning both racks — with a
    // tiny region forcing collisions and genuine second-level merges —
    // must equal the sequential fold under the bound operator (a sum
    // would overshoot min and scramble max whenever the same key is
    // merged at two levels).
    for (ReduceOp op : {ReduceOp::kMin, ReduceOp::kMax}) {
        AskCluster cluster(fabric_config(20));
        std::vector<StreamSpec> streams = {{HostId{1}, rack_stream(30, 500)},
                                           {HostId{2}, rack_stream(31, 500)}};
        AggregateMap truth = truth_of(streams, op);

        TaskOptions opts;
        opts.op = op;
        opts.region_len = 2;
        TaskResult r = cluster.run_task(5, HostId{0}, streams, opts);
        ASSERT_TRUE(r.ok()) << r.report.detail;
        EXPECT_EQ(r.result, truth) << reduce_op_name(op);
        EXPECT_GT(cluster.switch_stats(kTier).tuples_aggregated, 0u)
            << reduce_op_name(op);
    }
}

TEST(MultiRack, CountTaskSurvivesToRRebootExactlyOnce)
{
    // count is not idempotent: any retransmission the reboot provokes
    // that slipped past the seen window would inflate the tally. The
    // delivered counts must match the sequential fold exactly.
    ClusterConfig cc = fabric_config(21);
    std::vector<StreamSpec> streams = {{HostId{2}, rack_stream(32, 900)},
                                       {HostId{3}, rack_stream(33, 900)}};
    TaskOptions opts;
    opts.op = ReduceOp::kCount;
    AggregateMap truth = truth_of(streams, ReduceOp::kCount);

    sim::SimTime mid;
    {
        AskCluster dry(cc);
        TaskResult r = dry.run_task(1, HostId{0}, streams, opts);
        ASSERT_TRUE(r.ok()) << r.report.detail;
        mid = r.report.finish_time / 2;
    }

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    sim::ChaosEvent reboot;
    reboot.kind = sim::ChaosKind::kSwitchReboot;
    reboot.at = mid;
    reboot.duration = 200 * kMicrosecond;
    reboot.subject = 1;  // the senders' ToR
    plan.add(reboot);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, HostId{0}, streams, opts);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 1u);
}

TEST(MultiRack, ConcurrentTasksInBothRacksStayExact)
{
    AskCluster cluster(fabric_config(6));
    std::vector<StreamSpec> sa = {{HostId{1}, rack_stream(8, 400)},
                                  {HostId{2}, rack_stream(9, 400)}};
    std::vector<StreamSpec> sb = {{HostId{3}, rack_stream(10, 400)}};
    AggregateMap ta = truth_of(sa, AggOp::kAdd);
    AggregateMap tb = truth_of(sb, AggOp::kAdd);

    // Explicit regions: a defaulted task would claim the whole pool
    // (copy_size = 64 here) and starve the one allocated after it.
    TaskOptions half;
    half.region_len = 24;

    AggregateMap ra, rb;
    int done = 0;
    cluster.submit_task(10, HostId{0}, sa, half,
                        [&](AggregateMap m, TaskReport) {
                            ra = std::move(m);
                            ++done;
                        });
    cluster.submit_task(11, HostId{2}, sb, half,
                        [&](AggregateMap m, TaskReport) {
                            rb = std::move(m);
                            ++done;
                        });
    cluster.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(ra, ta);
    EXPECT_EQ(rb, tb);
}

TEST(MultiRack, ToRRebootMidTaskStaysExact)
{
    ClusterConfig cc = fabric_config(7);
    std::vector<StreamSpec> streams = {{HostId{2}, rack_stream(11, 1200)},
                                       {HostId{3}, rack_stream(12, 1200)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    // Dry-run on an identical fault-free fabric to aim the reboot at
    // the middle of the task.
    sim::SimTime mid;
    {
        AskCluster dry(cc);
        TaskResult r = dry.run_task(1, HostId{0}, streams);
        ASSERT_TRUE(r.ok()) << r.report.detail;
        mid = r.report.finish_time / 2;
    }

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    sim::ChaosEvent reboot;
    reboot.kind = sim::ChaosKind::kSwitchReboot;
    reboot.at = mid;
    reboot.duration = 200 * kMicrosecond;
    reboot.subject = 1;  // the senders' ToR (subject % num_switches)
    plan.add(reboot);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, HostId{0}, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 1u);
}

TEST(MultiRack, TierRebootMidTaskStaysExact)
{
    ClusterConfig cc = fabric_config(8);
    std::vector<StreamSpec> streams = {{HostId{1}, rack_stream(13, 1000)},
                                       {HostId{2}, rack_stream(14, 1000)}};
    AggregateMap truth = truth_of(streams, AggOp::kAdd);

    sim::SimTime mid;
    {
        AskCluster dry(cc);
        TaskResult r = dry.run_task(1, HostId{3}, streams);
        ASSERT_TRUE(r.ok()) << r.report.detail;
        mid = r.report.finish_time / 2;
    }

    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    sim::ChaosEvent reboot;
    reboot.kind = sim::ChaosKind::kSwitchReboot;
    reboot.at = mid;
    reboot.duration = 200 * kMicrosecond;
    reboot.subject = 2;  // the aggregation tier
    plan.add(reboot);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(1, HostId{3}, streams);
    ASSERT_TRUE(r.ok()) << r.report.detail;
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(cluster.chaos_stats().switch_reboots, 1u);
}

TEST(MultiRack, PerSwitchStateBoundedByRackSize)
{
    // The same 4 hosts as one rack vs two: each ToR of the fabric holds
    // exactly half the channel-indexed reliability state of the
    // monolithic switch (the tier, which provisions everything, is the
    // part that does not shrink — the ToRs are what rack growth adds).
    ClusterConfig flat = fabric_config(9);
    flat.topology = TopologyBuilder().add_rack(4).build();
    ClusterConfig split = fabric_config(9);

    AskCluster one(flat);
    AskCluster two(split);
    std::uint64_t whole = one.program(SwitchId{0}).reliability_state_bits();
    std::uint64_t tor = two.program(kTor0).reliability_state_bits();
    EXPECT_EQ(tor * 2, whole);
    EXPECT_EQ(two.program(kTor1).reliability_state_bits(), tor);
    EXPECT_EQ(two.program(kTier).reliability_state_bits(), whole);
}

}  // namespace
}  // namespace ask::core
