/**
 * Multi-rack deployment tests (paper §7): ASK runs on each rack's ToR
 * switch and serves only that rack's hosts; cross-rack traffic bypasses
 * switch aggregation and is merged at the receiver host. Exactly-once
 * correctness must hold for intra-rack, cross-rack, and mixed tasks.
 *
 * Topology: 2 racks x 2 hosts, one ASK ToR per rack, a forwarding core
 * switch between the ToRs.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ask/controller.h"
#include "ask/daemon.h"
#include "ask/switch_program.h"
#include "baselines/noaggr.h"
#include "common/random.h"
#include "common/string_util.h"
#include "net/network.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace ask::core {
namespace {

class MultiRackFixture : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kRacks = 2;
    static constexpr std::uint32_t kHostsPerRack = 2;

    MultiRackFixture() : network_(simulator_)
    {
        config_.num_aas = 8;
        config_.aggregators_per_aa = 256;
        config_.medium_groups = 2;
        config_.window = 16;
        config_.channels_per_host = 2;
        config_.max_hosts = kRacks * kHostsPerRack;
        config_.swap_threshold_packets = 0;

        // Core switch (plain forwarding).
        core_ = std::make_unique<pisa::PisaSwitch>(network_, 4,
                                                   pisa::kDefaultStageSramBytes);
        network_.attach(core_.get());
        core_->install(&forward_);

        net::CostModel cost{net::CostModelSpec{}};
        for (std::uint32_t r = 0; r < kRacks; ++r) {
            // The rack's ToR with its own ASK program and controller.
            tors_.push_back(std::make_unique<pisa::PisaSwitch>(network_));
            network_.attach(tors_.back().get());
            programs_.push_back(
                std::make_unique<AskSwitchProgram>(config_, *tors_.back()));
            controllers_.push_back(
                std::make_unique<AskSwitchController>(*programs_.back()));
            mgmts_.push_back(std::make_unique<MgmtPlane>(
                simulator_, 20 * units::kMicrosecond, MgmtRetryPolicy{}));
            network_.connect(tors_.back()->node_id(), core_->node_id(), 400.0,
                             500);

            // §7: the ToR serves only its local channels.
            ChannelId lo = static_cast<ChannelId>(
                r * kHostsPerRack * config_.channels_per_host);
            ChannelId hi = static_cast<ChannelId>(
                (r + 1) * kHostsPerRack * config_.channels_per_host);
            programs_.back()->set_local_channels(lo, hi);

            for (std::uint32_t h = 0; h < kHostsPerRack; ++h) {
                std::uint32_t host_index = r * kHostsPerRack + h;
                daemons_.push_back(std::make_unique<AskDaemon>(
                    config_, cost, network_, host_index,
                    tors_.back()->node_id(), *controllers_.back(),
                    *mgmts_.back()));
                network_.attach(daemons_.back().get());
                network_.connect(daemons_.back()->node_id(),
                                 tors_.back()->node_id(), 100.0, 500);
            }
        }

        // FIBs: each ToR sends remote hosts via the core; the core sends
        // each host via its rack's ToR.
        for (std::uint32_t r = 0; r < kRacks; ++r) {
            for (std::uint32_t hi = 0; hi < daemons_.size(); ++hi) {
                std::uint32_t host_rack = hi / kHostsPerRack;
                net::NodeId host_node = daemons_[hi]->node_id();
                core_->set_route(host_node, tors_[host_rack]->node_id());
                if (host_rack != r)
                    tors_[r]->set_route(host_node, core_->node_id());
            }
        }
    }

    /** Run one task; returns the result and checks exactness. */
    AggregateMap
    run_task(TaskId task, std::uint32_t receiver,
             const std::vector<std::pair<std::uint32_t, KvStream>>& streams)
    {
        AggregateMap truth;
        for (const auto& [host, stream] : streams)
            aggregate_into(truth, stream, AggOp::kAdd);

        AggregateMap result;
        bool done = false;
        AskDaemon& rx = *daemons_[receiver];
        rx.start_receive(
            task, static_cast<std::uint32_t>(streams.size()), {},
            [&](AggregateMap m, TaskReport) {
                result = std::move(m);
                done = true;
            },
            [&, task] {
                for (const auto& [host, stream] : streams) {
                    daemons_[host]->submit_send(task, rx.node_id(), stream);
                }
            });
        simulator_.run();
        EXPECT_TRUE(done);
        EXPECT_EQ(result, truth);
        return result;
    }

    sim::Simulator simulator_;
    net::Network network_;
    AskConfig config_;
    baselines::ForwardProgram forward_;
    std::unique_ptr<pisa::PisaSwitch> core_;
    std::vector<std::unique_ptr<pisa::PisaSwitch>> tors_;
    std::vector<std::unique_ptr<AskSwitchProgram>> programs_;
    std::vector<std::unique_ptr<AskSwitchController>> controllers_;
    std::vector<std::unique_ptr<MgmtPlane>> mgmts_;
    std::vector<std::unique_ptr<AskDaemon>> daemons_;
};

KvStream
rack_stream(std::uint64_t seed, std::size_t n)
{
    Rng rng = seeded_rng("multirack_test", seed);
    KvStream s;
    for (std::size_t i = 0; i < n; ++i)
        s.push_back({u64_key(rng.next_below(64)), 1});
    return s;
}

TEST_F(MultiRackFixture, IntraRackTaskAggregatesOnItsToR)
{
    run_task(1, /*receiver=*/0, {{1, rack_stream(1, 400)}});
    // The rack-0 ToR did the aggregation; rack 1 never saw the task.
    EXPECT_GT(programs_[0]->stats().tuples_aggregated, 0u);
    EXPECT_EQ(programs_[1]->stats().data_packets, 0u);
}

TEST_F(MultiRackFixture, CrossRackTaskBypassesSwitchAggregation)
{
    // Sender in rack 1, receiver in rack 0: the paper's §7 rule says
    // cross-rack traffic is aggregated at the receiver host only.
    run_task(2, /*receiver=*/0, {{2, rack_stream(2, 400)}});
    EXPECT_EQ(programs_[0]->stats().tuples_aggregated, 0u);
    EXPECT_EQ(programs_[1]->stats().tuples_aggregated, 0u);
    // ...and reaches the receiver host for local aggregation.
    EXPECT_GT(daemons_[0]->stats().tuples_aggregated_locally, 0u);
}

TEST_F(MultiRackFixture, MixedSendersStayExact)
{
    // One local and one remote sender: the local stream aggregates on
    // the ToR, the remote stream at the host, and the final merge must
    // still equal the ground truth (checked inside run_task).
    run_task(3, /*receiver=*/1,
             {{0, rack_stream(3, 500)}, {3, rack_stream(4, 500)}});
    EXPECT_GT(programs_[0]->stats().tuples_aggregated, 0u);
    EXPECT_GT(daemons_[1]->stats().tuples_aggregated_locally, 0u);
}

TEST_F(MultiRackFixture, ConcurrentTasksInBothRacks)
{
    AggregateMap truth_a, truth_b;
    KvStream sa = rack_stream(5, 400), sb = rack_stream(6, 400);
    aggregate_into(truth_a, sa, AggOp::kAdd);
    aggregate_into(truth_b, sb, AggOp::kAdd);

    AggregateMap ra, rb;
    int done = 0;
    daemons_[0]->start_receive(10, 1, {},
                               [&](AggregateMap m, TaskReport) {
                                   ra = std::move(m);
                                   ++done;
                               },
                               [&] {
                                   daemons_[1]->submit_send(
                                       10, daemons_[0]->node_id(), sa);
                               });
    daemons_[2]->start_receive(11, 1, {},
                               [&](AggregateMap m, TaskReport) {
                                   rb = std::move(m);
                                   ++done;
                               },
                               [&] {
                                   daemons_[3]->submit_send(
                                       11, daemons_[2]->node_id(), sb);
                               });
    simulator_.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(ra, truth_a);
    EXPECT_EQ(rb, truth_b);
    // Each rack's ToR handled only its own task.
    EXPECT_GT(programs_[0]->stats().tuples_aggregated, 0u);
    EXPECT_GT(programs_[1]->stats().tuples_aggregated, 0u);
}

TEST_F(MultiRackFixture, RemoteTrafficLeavesNoSwitchState)
{
    // Cross-rack DATA must not consume the remote ToR's seen/window
    // state (the §7 motivation: per-switch state bounded by rack size).
    run_task(4, /*receiver=*/0, {{2, rack_stream(7, 300)}});
    // The receiver-rack ToR forwarded but recorded nothing.
    EXPECT_EQ(programs_[0]->stats().data_packets, 0u);
    EXPECT_EQ(programs_[0]->stats().duplicates, 0u);
}

}  // namespace
}  // namespace ask::core
