/** Unit tests for the workload generators and corpus synthesizers. */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ask/key_space.h"
#include "workload/generators.h"
#include "workload/models.h"
#include "workload/text_corpus.h"

namespace ask::workload {
namespace {

TEST(UniformGenerator, RespectsVocabularyAndReproducible)
{
    UniformGenerator a(100, 5), b(100, 5);
    auto sa = a.generate(1000);
    auto sb = b.generate(1000);
    EXPECT_EQ(sa.size(), 1000u);
    EXPECT_EQ(sa, sb);
    std::set<core::Key> keys;
    for (const auto& t : sa)
        keys.insert(t.key);
    EXPECT_LE(keys.size(), 100u);
    EXPECT_GT(keys.size(), 80u);  // most of the vocabulary appears
}

TEST(UniformGenerator, PrefixIsolatesSenders)
{
    UniformGenerator a(10, 1, "a-"), b(10, 1, "b-");
    EXPECT_NE(a.key_of(3), b.key_of(3));
}

TEST(ZipfGenerator, SkewMatchesExponent)
{
    ZipfGenerator z(1000, 1.0, 9);
    std::map<std::uint64_t, std::uint64_t> counts;
    const std::uint64_t n = 200000;
    for (std::uint64_t i = 0; i < n; ++i)
        ++counts[z.sample_rank()];
    // Rank 0 should be ~1/H(1000) of the mass (~13.4% for alpha=1).
    double top = static_cast<double>(counts[0]) / n;
    EXPECT_NEAR(top, 0.134, 0.02);
    // Frequencies are (weakly) decreasing over the head ranks.
    EXPECT_GT(counts[0], counts[9]);
    EXPECT_GT(counts[1], counts[50]);
}

TEST(ZipfGenerator, AlphaZeroIsUniform)
{
    ZipfGenerator z(100, 0.0, 3);
    std::map<std::uint64_t, std::uint64_t> counts;
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample_rank()];
    EXPECT_NEAR(counts[0], 1000, 250);
    EXPECT_NEAR(counts[99], 1000, 250);
}

TEST(ZipfGenerator, OrderModes)
{
    ZipfGenerator z(500, 1.0, 7);
    auto hot = z.generate(5000, KeyOrder::kHotFirst);
    // Hot-first: ranks non-decreasing == hottest keys first.
    ZipfGenerator z2(500, 1.0, 7);
    auto cold = z2.generate(5000, KeyOrder::kColdFirst);
    EXPECT_EQ(hot.front().key, z.key_of(0));
    EXPECT_EQ(cold.back().key, z.key_of(0));
    // Same seed -> same multiset of keys.
    std::multiset<core::Key> mh, mc;
    for (const auto& t : hot)
        mh.insert(t.key);
    for (const auto& t : cold)
        mc.insert(t.key);
    EXPECT_EQ(mh, mc);
}

TEST(ValueStream, DenseIndexKeys)
{
    auto s = value_stream(100, 7, 1);
    ASSERT_EQ(s.size(), 100u);
    std::set<core::Key> keys;
    for (const auto& t : s) {
        EXPECT_EQ(t.value, 7u);
        keys.insert(t.key);
    }
    EXPECT_EQ(keys.size(), 100u);  // all indices distinct
}

TEST(TextCorpus, DeterministicAndNulFree)
{
    TextCorpus a(newsgroups_profile(), 11), b(newsgroups_profile(), 11);
    auto sa = a.generate(2000);
    auto sb = b.generate(2000);
    EXPECT_EQ(sa, sb);
    for (const auto& t : sa) {
        EXPECT_FALSE(t.key.empty());
        EXPECT_EQ(t.key.find('\0'), core::Key::npos);
    }
}

TEST(TextCorpus, WordsAreUniquePerRank)
{
    CorpusProfile p = movie_reviews_profile();
    p.vocabulary = 20000;
    TextCorpus c(p, 3);
    std::set<core::Key> words;
    for (std::uint64_t r = 0; r < p.vocabulary; ++r)
        EXPECT_TRUE(words.insert(c.word(r)).second) << "rank " << r;
}

TEST(TextCorpus, LawOfAbbreviation)
{
    // Frequent words are shorter on average than rare ones.
    CorpusProfile p = yelp_profile();
    p.vocabulary = 50000;
    TextCorpus c(p, 5);
    double head = 0, tail = 0;
    for (std::uint64_t r = 0; r < 100; ++r)
        head += static_cast<double>(c.word(r).size());
    for (std::uint64_t r = 49900; r < 50000; ++r)
        tail += static_cast<double>(c.word(r).size());
    EXPECT_LT(head / 100, tail / 100 - 2.0);
}

TEST(TextCorpus, MixOfKeyClasses)
{
    // A realistic corpus exercises all three key classes of the ASK
    // data plane (4-byte segments, m=2 -> short <=4, medium 5..8, long >8).
    core::AskConfig cfg;
    core::KeySpace ks(cfg);
    CorpusProfile p = blog_authorship_profile();
    p.vocabulary = 30000;
    TextCorpus c(p, 9);
    std::map<core::KeyClass, std::uint64_t> by_class;
    for (const auto& t : c.generate(20000))
        ++by_class[ks.classify(t.key)];
    EXPECT_GT(by_class[core::KeyClass::kShort], 0u);
    EXPECT_GT(by_class[core::KeyClass::kMedium], 0u);
    EXPECT_GT(by_class[core::KeyClass::kLong], 0u);
    // Frequency-weighted text is dominated by short+medium words.
    EXPECT_GT(by_class[core::KeyClass::kShort] +
                  by_class[core::KeyClass::kMedium],
              by_class[core::KeyClass::kLong]);
}

TEST(Models, Figure12Zoo)
{
    auto models = figure12_models();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0].name, "ResNet50");
    EXPECT_EQ(models[0].parameters, 25557032u);
    EXPECT_EQ(models[5].name, "VGG19");
    // VGG gradients are much larger than ResNet's.
    EXPECT_GT(models[3].gradient_bytes(), 4 * models[0].gradient_bytes());
    for (const auto& m : models) {
        EXPECT_GT(m.compute_ns, 0);
        EXPECT_GT(m.single_gpu_ips(), 50.0);
        EXPECT_LT(m.single_gpu_ips(), 400.0);
    }
}

}  // namespace
}  // namespace ask::workload
