/**
 * End-to-end integration tests: full AskCluster deployments running
 * aggregation tasks over reliable and faulty networks. The central
 * invariant is *exactly-once aggregation*: for any loss/duplication/
 * reordering pattern, the final result equals the ground-truth host
 * aggregation of all sender streams (paper §3.3).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ask/cluster.h"
#include "common/random.h"
#include "common/string_util.h"

namespace ask::core {
namespace {

ClusterConfig
small_cluster(std::uint32_t hosts)
{
    ClusterConfig cc;
    cc.num_hosts = hosts;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 256;
    cc.ask.medium_groups = 2;
    cc.ask.medium_segments = 2;
    cc.ask.window = 16;
    cc.ask.channels_per_host = 2;
    cc.ask.max_hosts = hosts;
    cc.ask.max_tasks = 8;
    cc.ask.swap_threshold_packets = 0;
    return cc;
}

KvStream
random_stream(Rng& rng, std::size_t n, std::size_t distinct,
              std::size_t max_len = 6)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(distinct);
        std::string key = "k" + std::to_string(id);
        if (key.size() > max_len)
            key.resize(max_len);
        s.push_back({key, static_cast<Value>(1 + rng.next_below(5))});
    }
    return s;
}

AggregateMap
ground_truth(const std::vector<StreamSpec>& streams)
{
    AggregateMap truth;
    for (const auto& s : streams)
        aggregate_into(truth, s.stream, AggOp::kAdd);
    return truth;
}

TEST(Integration, SingleSenderExactResult)
{
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 1);
    std::vector<StreamSpec> streams{{1, random_stream(rng, 500, 40)}};
    AggregateMap truth = ground_truth(streams);

    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.result, truth);
}

TEST(Integration, MultiSenderExactResult)
{
    AskCluster cluster(small_cluster(4));
    Rng rng = seeded_rng("integration_test", 2);
    std::vector<StreamSpec> streams;
    for (std::uint32_t h = 1; h < 4; ++h)
        streams.push_back({h, random_stream(rng, 400, 60)});
    AggregateMap truth = ground_truth(streams);

    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
    // Multiple senders' tuples for the same key merged on the switch.
    EXPECT_GT(cluster.switch_stats().tuples_aggregated, 0u);
}

TEST(Integration, ReceiverCanAlsoSend)
{
    // A co-located mapper: the receiver host itself contributes a stream.
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 3);
    std::vector<StreamSpec> streams{
        {0, random_stream(rng, 200, 30)},
        {1, random_stream(rng, 200, 30)},
    };
    AggregateMap truth = ground_truth(streams);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
}

TEST(Integration, EmptyStreamCompletes)
{
    AskCluster cluster(small_cluster(2));
    std::vector<StreamSpec> streams{{1, KvStream{}}};
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.result.empty());
}

TEST(Integration, MixedKeyLengthsIncludingLong)
{
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 4);
    KvStream s;
    for (int i = 0; i < 600; ++i) {
        std::size_t len = 1 + rng.next_below(14);  // short/medium/long mix
        std::string key(len, 'a');
        for (auto& c : key)
            c = static_cast<char>('a' + rng.next_below(8));
        s.push_back({key, 1});
    }
    std::vector<StreamSpec> streams{{1, std::move(s)}};
    AggregateMap truth = ground_truth(streams);

    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
    // Long keys really did bypass the switch.
    EXPECT_GT(cluster.total_host_stats().long_packets_sent, 0u);
}

TEST(Integration, ConservationOfTuples)
{
    // Every valid tuple is aggregated exactly once: on the switch or at
    // the receiver.
    AskCluster cluster(small_cluster(3));
    Rng rng = seeded_rng("integration_test", 5);
    std::vector<StreamSpec> streams{
        {1, random_stream(rng, 700, 25)},
        {2, random_stream(rng, 700, 25)},
    };
    std::uint64_t total = 1400;
    TaskResult r = cluster.run_task(1, 0, streams);

    const SwitchAggStats& sw = cluster.switch_stats();
    HostStats hosts = cluster.total_host_stats();
    EXPECT_EQ(sw.tuples_aggregated + hosts.tuples_aggregated_locally, total);
    EXPECT_EQ(sw.tuples_in, total);
    ASSERT_TRUE(r.ok());
}

TEST(Integration, SmallRegionFallsBackToReceiver)
{
    // With a one-aggregator region, most tuples collide and the receiver
    // does the work — the result must still be exact.
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 6);
    std::vector<StreamSpec> streams{{1, random_stream(rng, 500, 50)}};
    AggregateMap truth = ground_truth(streams);
    TaskResult r = cluster.run_task(1, 0, streams, {.region_len = 1});
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(cluster.total_host_stats().tuples_aggregated_locally, 0u);
}

TEST(Integration, SequentialTasksReuseChannelsAndRegions)
{
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 7);
    for (TaskId t = 1; t <= 4; ++t) {
        std::vector<StreamSpec> streams{{1, random_stream(rng, 300, 20)}};
        AggregateMap truth = ground_truth(streams);
        TaskResult r = cluster.run_task(t, 0, streams);
        EXPECT_EQ(r.result, truth) << "task " << t;
    }
}

TEST(Integration, ConcurrentTasksMultiplexTheService)
{
    AskCluster cluster(small_cluster(4));
    Rng rng = seeded_rng("integration_test", 8);
    std::vector<std::vector<StreamSpec>> specs;
    std::vector<AggregateMap> truths;
    std::vector<TaskResult> results(3);
    std::vector<bool> done(3, false);

    for (TaskId t = 0; t < 3; ++t) {
        std::vector<StreamSpec> streams{
            {(t + 1) % 4, random_stream(rng, 300, 30)},
            {(t + 2) % 4, random_stream(rng, 300, 30)},
        };
        truths.push_back(ground_truth(streams));
        cluster.submit_task(100 + t, t, streams, {.region_len = 32},
                            [&results, &done, t](AggregateMap m, TaskReport rep) {
                                results[t].result = std::move(m);
                                results[t].report = rep;
                                done[t] = true;
                            });
    }
    cluster.run();
    for (TaskId t = 0; t < 3; ++t) {
        ASSERT_TRUE(done[t]) << "task " << t;
        EXPECT_EQ(results[t].result, truths[t]) << "task " << t;
    }
}

TEST(Integration, ShadowCopySwapsPreserveExactness)
{
    ClusterConfig cc = small_cluster(2);
    cc.ask.swap_threshold_packets = 8;  // swap aggressively
    AskCluster cluster(cc);
    Rng rng = seeded_rng("integration_test", 9);
    // More distinct keys than the (tiny) region: collisions keep packets
    // flowing to the receiver, which triggers periodic swaps.
    KvStream s;
    for (int i = 0; i < 3000; ++i)
        s.push_back({"k" + std::to_string(rng.next_below(50)), 1});
    std::vector<StreamSpec> streams{{1, std::move(s)}};
    AggregateMap truth = ground_truth(streams);

    TaskResult r = cluster.run_task(1, 0, streams, {.region_len = 2});
    EXPECT_EQ(r.result, truth);
    EXPECT_GT(r.report.swaps, 0u);
    EXPECT_GT(cluster.switch_stats().swaps, 0u);
}

// ---------------------------------------------------------------------------
// Fault-injection property tests: exactly-once under loss/dup/reorder.
// ---------------------------------------------------------------------------

struct FaultCase
{
    double loss;
    double dup;
    double reorder;
    std::uint64_t seed;
};

class FaultyNetwork : public ::testing::TestWithParam<FaultCase>
{
};

TEST_P(FaultyNetwork, ExactlyOnceAggregation)
{
    const FaultCase& fc = GetParam();
    ClusterConfig cc = small_cluster(3);
    cc.faults = net::FaultSpec::lossy(fc.loss, fc.dup, fc.reorder);
    cc.seed = fc.seed;
    cc.ask.swap_threshold_packets = 16;  // swaps in the mix too
    AskCluster cluster(cc);

    Rng rng = seeded_rng("integration_test", fc.seed);
    std::vector<StreamSpec> streams{
        {1, random_stream(rng, 600, 40, /*max_len=*/10)},
        {2, random_stream(rng, 600, 40, /*max_len=*/10)},
    };
    AggregateMap truth = ground_truth(streams);

    TaskResult r = cluster.run_task(1, 0, streams);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.result, truth)
        << "loss=" << fc.loss << " dup=" << fc.dup << " seed=" << fc.seed;
    if (fc.loss > 0.0) {
        EXPECT_GT(cluster.total_host_stats().retransmissions, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    LossDupReorder, FaultyNetwork,
    ::testing::Values(FaultCase{0.01, 0.0, 0.0, 11}, FaultCase{0.05, 0.0, 0.0, 12},
                      FaultCase{0.20, 0.0, 0.0, 13}, FaultCase{0.0, 0.05, 0.0, 14},
                      FaultCase{0.0, 0.0, 0.30, 15}, FaultCase{0.05, 0.05, 0.10, 16},
                      FaultCase{0.15, 0.10, 0.20, 17}, FaultCase{0.30, 0.10, 0.30, 18}));

TEST(Integration, LossyLongKeysStillExact)
{
    ClusterConfig cc = small_cluster(2);
    cc.faults = net::FaultSpec::lossy(0.1, 0.05, 0.1);
    AskCluster cluster(cc);
    Rng rng = seeded_rng("integration_test", 21);
    KvStream s;
    for (int i = 0; i < 400; ++i) {
        std::string key = "long-key-number-" + std::to_string(rng.next_below(37));
        s.push_back({key, 2});
    }
    std::vector<StreamSpec> streams{{1, std::move(s)}};
    AggregateMap truth = ground_truth(streams);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
}

TEST(Integration, ReportAccountsForAllTuples)
{
    AskCluster cluster(small_cluster(2));
    Rng rng = seeded_rng("integration_test", 22);
    std::vector<StreamSpec> streams{{1, random_stream(rng, 500, 30)}};
    TaskResult r = cluster.run_task(1, 0, streams);
    // Every distinct key came from the switch fetch or local merge.
    EXPECT_GT(r.report.tuples_fetched_from_switch +
                  r.report.tuples_aggregated_locally,
              0u);
    EXPECT_GT(r.report.finish_time, r.report.start_time);
}

TEST(Integration, ValueStreamBackwardCompatibility)
{
    // The paper's §5.6: value-stream (gradient) aggregation is the
    // special case where the key is the vector index.
    AskCluster cluster(small_cluster(3));
    const std::size_t dim = 512;
    std::vector<StreamSpec> streams;
    for (std::uint32_t h = 1; h < 3; ++h) {
        KvStream s;
        for (std::size_t i = 0; i < dim; ++i)
            s.push_back({u64_key(i), static_cast<Value>(h * 10 + i % 7)});
        streams.push_back({h, std::move(s)});
    }
    AggregateMap truth = ground_truth(streams);
    TaskResult r = cluster.run_task(1, 0, streams);
    EXPECT_EQ(r.result, truth);
    EXPECT_EQ(r.result.size(), dim);
}

}  // namespace
}  // namespace ask::core
