/** Tests for the application layer: mini MapReduce and trainsim. */
#include <gtest/gtest.h>

#include "apps/minimr.h"
#include "apps/trainsim.h"

namespace ask::apps {
namespace {

MrJobSpec
small_job(MrBackend backend)
{
    MrJobSpec spec;
    spec.backend = backend;
    spec.machines = 3;
    spec.tuples_per_mapper = 30000000;  // 3e7 (scaled in ASK backend)
    spec.distinct_keys_per_mapper = 1 << 14;
    spec.sim_scale = 600;
    return spec;
}

TEST(MiniMr, AskBeatsSparkFamilyJct)
{
    double ask = run_mr_job(small_job(MrBackend::kAsk)).jct_s;
    double spark = run_mr_job(small_job(MrBackend::kSpark)).jct_s;
    double shm = run_mr_job(small_job(MrBackend::kSparkShm)).jct_s;
    double rdma = run_mr_job(small_job(MrBackend::kSparkRdma)).jct_s;
    EXPECT_LT(ask, spark);
    EXPECT_LT(ask, shm);
    EXPECT_LT(ask, rdma);
}

TEST(MiniMr, AskMapperTctMuchShorter)
{
    auto ask = run_mr_job(small_job(MrBackend::kAsk));
    auto spark = run_mr_job(small_job(MrBackend::kSpark));
    // Paper Fig. 11: ASK mappers only hand tuples to the daemon.
    EXPECT_LT(ask.mapper_tct_s, spark.mapper_tct_s / 5);
    // ...while ASK reducers run longer than its mappers.
    EXPECT_GT(ask.reducer_tct_s, ask.mapper_tct_s);
}

TEST(MiniMr, AskUsesFarLessCpu)
{
    auto ask = run_mr_job(small_job(MrBackend::kAsk));
    auto spark = run_mr_job(small_job(MrBackend::kSpark));
    EXPECT_LT(ask.cpu_fraction, spark.cpu_fraction / 4);
}

TEST(MiniMr, SwitchAbsorbsMostTraffic)
{
    auto ask = run_mr_job(small_job(MrBackend::kAsk));
    EXPECT_GT(ask.switch_tuple_ratio, 0.5);
    EXPECT_GT(ask.switch_ack_ratio, 0.3);
    EXPECT_LE(ask.switch_tuple_ratio, 1.0);
}

TEST(MiniMr, BackendNames)
{
    EXPECT_STREQ(mr_backend_name(MrBackend::kAsk), "ASK");
    EXPECT_STREQ(mr_backend_name(MrBackend::kSpark), "Spark");
    EXPECT_STREQ(mr_backend_name(MrBackend::kSparkShm), "SparkSHM");
    EXPECT_STREQ(mr_backend_name(MrBackend::kSparkRdma), "SparkRDMA");
}

TrainSpec
probe_spec(TrainBackend backend)
{
    TrainSpec spec;
    spec.model = workload::resnet50();
    spec.workers = 4;
    spec.backend = backend;
    spec.probe_elements = 1 << 16;  // small probe keeps the test fast
    return spec;
}

TEST(TrainSim, AllBackendsProduceThroughput)
{
    for (auto b : {TrainBackend::kAsk, TrainBackend::kAtp,
                   TrainBackend::kSwitchMl}) {
        TrainResult r = run_training(probe_spec(b));
        EXPECT_GT(r.images_per_second, 100.0) << train_backend_name(b);
        EXPECT_GT(r.goodput_gbps, 0.5) << train_backend_name(b);
        EXPECT_GT(r.comm_s, 0.0);
    }
}

TEST(TrainSim, ComputeBoundModelsAreBackendInsensitive)
{
    // Fig. 12's core finding: the INA backends land close together on
    // compute-bound models. Our ASK value-stream path pays an extra
    // asynchronous-aggregation drain cost (see EXPERIMENTS.md), so it
    // gets a looser band than the synchronous designs.
    // A larger probe than the smoke tests: tiny pushes are dominated by
    // task setup and underestimate ASK's steady-state goodput.
    TrainSpec ask_spec = probe_spec(TrainBackend::kAsk);
    ask_spec.probe_elements = 1 << 20;
    TrainResult ask = run_training(ask_spec);
    TrainResult atp = run_training(probe_spec(TrainBackend::kAtp));
    TrainResult sml = run_training(probe_spec(TrainBackend::kSwitchMl));
    EXPECT_NEAR(sml.images_per_second, atp.images_per_second,
                0.15 * atp.images_per_second);
    EXPECT_GT(ask.images_per_second, 0.55 * atp.images_per_second);
    EXPECT_LE(ask.images_per_second, 1.15 * atp.images_per_second);
}

TEST(TrainSim, ScalesWithWorkers)
{
    TrainSpec s4 = probe_spec(TrainBackend::kAtp);
    TrainSpec s8 = s4;
    s8.workers = 8;
    TrainResult r4 = run_training(s4);
    TrainResult r8 = run_training(s8);
    EXPECT_GT(r8.images_per_second, 1.5 * r4.images_per_second);
}

TEST(TrainSim, BackendNames)
{
    EXPECT_STREQ(train_backend_name(TrainBackend::kAsk), "ASK");
    EXPECT_STREQ(train_backend_name(TrainBackend::kAtp), "ATP");
    EXPECT_STREQ(train_backend_name(TrainBackend::kSwitchMl), "SwitchML");
}

}  // namespace
}  // namespace ask::apps
