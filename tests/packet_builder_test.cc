/** Unit tests for sender-side packet construction (§3.2.2). */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ask/packet_builder.h"
#include "common/random.h"
#include "common/string_util.h"

namespace ask::core {
namespace {

AskConfig
cfg8()
{
    AskConfig c;
    c.num_aas = 8;
    c.aggregators_per_aa = 64;
    c.medium_groups = 2;
    c.medium_segments = 2;
    return c;
}

TEST(PacketBuilder, EmptyBuilderYieldsNothing)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.next_data().has_value());
    EXPECT_FALSE(b.next_long_batch(1024).has_value());
}

TEST(PacketBuilder, SlotPlacementMatchesPartition)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    KvTuple t{"ab", 5};
    b.enqueue(t);
    auto built = b.next_data();
    ASSERT_TRUE(built.has_value());
    std::uint32_t slot = ks.short_slot("ab");
    EXPECT_EQ(built->bitmap, 1ULL << slot);
    EXPECT_EQ(built->valid_tuples, 1u);
    EXPECT_EQ(built->slots[slot].value, 5u);
    EXPECT_EQ(built->slots[slot].seg, ks.encode_segment(ks.padded("ab"), 0));
}

TEST(PacketBuilder, SameKeyAlwaysSameSlot)
{
    // The single-key-multiple-spot avoidance: the same key across many
    // packets always occupies the same slot.
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    for (int i = 0; i < 10; ++i)
        b.enqueue(KvTuple{"dup", 1});
    std::uint32_t slot = ks.short_slot("dup");
    int packets = 0;
    while (auto built = b.next_data()) {
        EXPECT_EQ(built->bitmap, 1ULL << slot);
        ++packets;
    }
    // One tuple per packet: the slot queue drains one head per packet.
    EXPECT_EQ(packets, 10);
}

TEST(PacketBuilder, MediumKeyOccupiesWholeGroup)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    b.enqueue(KvTuple{"yourself"
                      "",
                      9});  // 8 bytes: medium
    auto built = b.next_data();
    ASSERT_TRUE(built.has_value());
    std::uint32_t g = ks.medium_group("yourself");
    std::uint32_t mb = cfg8().medium_base(g);
    EXPECT_EQ(built->bitmap, (1ULL << mb) | (1ULL << (mb + 1)));
    EXPECT_EQ(built->valid_tuples, 1u);
    // Value rides in the last segment's slot; earlier slots carry 0.
    EXPECT_EQ(built->slots[mb].value, 0u);
    EXPECT_EQ(built->slots[mb + 1].value, 9u);
}

TEST(PacketBuilder, LongKeysBypassDataPath)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    b.enqueue(KvTuple{"a-very-long-key-indeed", 3});
    EXPECT_FALSE(b.has_data());
    EXPECT_TRUE(b.has_long());
    auto batch = b.next_long_batch(1024);
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u);
    EXPECT_EQ((*batch)[0].key, "a-very-long-key-indeed");
    EXPECT_TRUE(b.empty());
}

TEST(PacketBuilder, LongBatchRespectsPayloadBudget)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    std::string key(20, 'x');  // 2 + 20 + 4 = 26 bytes per tuple
    for (int i = 0; i < 10; ++i)
        b.enqueue(KvTuple{key, 1});
    auto batch = b.next_long_batch(60);  // 2 + 2*26 = 54 <= 60 < 80
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 2u);
}

TEST(PacketBuilder, OversizedLongTupleStillShips)
{
    // A single tuple larger than the budget must still go (alone).
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    b.enqueue(KvTuple{std::string(200, 'y'), 1});
    auto batch = b.next_long_batch(64);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->size(), 1u);
}

TEST(PacketBuilder, UniformKeysFillPackets)
{
    // With many distinct uniform keys, early packets should be full —
    // the Fig. 8b "Uniform" line.
    AskConfig c = cfg8();
    c.medium_groups = 0;  // all-short config for a clean count
    KeySpace ks(c);
    PacketBuilder b(ks);
    Rng rng = seeded_rng("packet_builder_test", 4);
    for (int i = 0; i < 4000; ++i)
        b.enqueue(KvTuple{u64_key(rng.next_below(100000)), 1});  // short keys

    int full = 0, total = 0;
    while (auto built = b.next_data()) {
        ++total;
        if (built->valid_tuples == c.num_aas)
            ++full;
    }
    EXPECT_GT(total, 0);
    EXPECT_GT(full / static_cast<double>(total), 0.8);
}

TEST(PacketBuilder, SkewedKeysLeaveBlanks)
{
    // All tuples share one key -> every packet carries exactly 1 tuple.
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    for (int i = 0; i < 100; ++i)
        b.enqueue(KvTuple{"hot", 1});
    while (auto built = b.next_data())
        EXPECT_EQ(built->valid_tuples, 1u);
}

TEST(PacketBuilder, CountsByClass)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    b.enqueue(KvTuple{"ab", 1});        // short
    b.enqueue(KvTuple{"abcdef", 1});    // medium
    b.enqueue(KvTuple{std::string(30, 'z'), 1});  // long
    EXPECT_EQ(b.short_enqueued(), 1u);
    EXPECT_EQ(b.medium_enqueued(), 1u);
    EXPECT_EQ(b.long_enqueued(), 1u);
}

TEST(PacketBuilder, NextDataIntoMatchesNextData)
{
    // The batched hot-path form (next_data_into, one scratch reused
    // across a whole drain) must be bit-identical to the allocating
    // next_data() — bitmap, tuple count, and every slot including the
    // zero-filled blanks — across full, partial, and blank-heavy
    // packets.
    AskConfig c = cfg8();
    KeySpace ks(c);
    Rng rng = seeded_rng("packet_builder_equiv", 21);

    auto make_stream = [&](int shape) {
        KvStream stream;
        for (int i = 0; i < 600; ++i) {
            std::string key;
            switch (shape) {
            case 0:  // many distinct short keys: early packets full
                key = u64_key(rng.next_below(100000));
                break;
            case 1:  // one hot key: every packet one tuple, rest blank
                key = "hot";
                break;
            default:  // mixed lengths incl. medium and long
                key.resize(1 + rng.next_below(12));
                for (auto& ch : key)
                    ch = static_cast<char>('a' + rng.next_below(26));
                break;
            }
            stream.push_back(
                KvTuple{key, static_cast<Value>(1 + rng.next_below(1000))});
        }
        return stream;
    };

    for (int shape = 0; shape < 3; ++shape) {
        KvStream stream = make_stream(shape);
        PacketBuilder ref_builder(ks);
        PacketBuilder batched(ks);
        ref_builder.enqueue(stream);
        batched.enqueue(stream);

        BuiltData scratch;
        const WireSlot* scratch_data = nullptr;
        int packets = 0;
        for (;;) {
            std::optional<BuiltData> ref = ref_builder.next_data();
            bool got = batched.next_data_into(scratch);
            ASSERT_EQ(ref.has_value(), got) << "shape " << shape;
            if (!ref)
                break;
            EXPECT_EQ(scratch.bitmap, ref->bitmap);
            EXPECT_EQ(scratch.valid_tuples, ref->valid_tuples);
            ASSERT_EQ(scratch.slots.size(), ref->slots.size());
            for (std::size_t i = 0; i < ref->slots.size(); ++i) {
                EXPECT_EQ(scratch.slots[i].seg, ref->slots[i].seg)
                    << "shape " << shape << " packet " << packets
                    << " slot " << i;
                EXPECT_EQ(scratch.slots[i].value, ref->slots[i].value)
                    << "shape " << shape << " packet " << packets
                    << " slot " << i;
            }
            // The scratch really is reused: no reallocation after the
            // first packet sizes it.
            if (packets == 0)
                scratch_data = scratch.slots.data();
            else
                EXPECT_EQ(scratch.slots.data(), scratch_data);
            ++packets;
        }
        EXPECT_GT(packets, 0) << "shape " << shape;
        EXPECT_TRUE(batched.has_long() == ref_builder.has_long());
    }
}

TEST(PacketBuilder, DrainsEverythingExactlyOnce)
{
    KeySpace ks(cfg8());
    PacketBuilder b(ks);
    Rng rng = seeded_rng("packet_builder_test", 17);
    std::map<std::string, std::uint64_t> truth;
    for (int i = 0; i < 2000; ++i) {
        std::size_t len = 1 + rng.next_below(12);
        std::string key;
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + rng.next_below(26)));
        truth[key] += 1;
        b.enqueue(KvTuple{key, 1});
    }

    std::map<std::string, std::uint64_t> seen;
    while (auto built = b.next_data()) {
        for (std::uint32_t i = 0; i < cfg8().short_aas(); ++i) {
            if (built->bitmap & (1ULL << i)) {
                seen[KeySpace::unpad(ks.decode_segment(built->slots[i].seg))] +=
                    built->slots[i].value;
            }
        }
        for (std::uint32_t g = 0; g < cfg8().medium_groups; ++g) {
            std::uint32_t mb = cfg8().medium_base(g);
            if (built->bitmap & (1ULL << mb)) {
                std::string padded = ks.decode_segment(built->slots[mb].seg) +
                                     ks.decode_segment(built->slots[mb + 1].seg);
                seen[KeySpace::unpad(padded)] += built->slots[mb + 1].value;
            }
        }
    }
    while (auto batch = b.next_long_batch(1024)) {
        for (const auto& t : *batch)
            seen[t.key] += t.value;
        if (!b.has_long())
            break;
    }
    EXPECT_EQ(seen, truth);
}

}  // namespace
}  // namespace ask::core
