/** Unit tests for the ASK wire format. */
#include <gtest/gtest.h>

#include "ask/wire.h"
#include "net/packet.h"

namespace ask::core {
namespace {

AskHeader
sample_header()
{
    AskHeader h;
    h.type = PacketType::kData;
    h.num_slots = 32;
    h.channel_id = 513;
    h.task_id = 0xdeadbeef;
    h.seq = 123456789;
    h.bitmap = 0xa5a5a5a5ULL;
    return h;
}

TEST(Wire, HeaderRoundTrip)
{
    auto data = make_frame(sample_header(), 0);
    auto parsed = parse_header(data);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, PacketType::kData);
    EXPECT_EQ(parsed->num_slots, 32);
    EXPECT_EQ(parsed->channel_id, 513);
    EXPECT_EQ(parsed->task_id, 0xdeadbeefu);
    EXPECT_EQ(parsed->seq, 123456789u);
    EXPECT_EQ(parsed->bitmap, 0xa5a5a5a5ULL);
}

TEST(Wire, FrameSizeMatchesPaperAccounting)
{
    // IP (20) + ASK header (20) + payload; +38 framing = the paper's
    // "8x + 78" wire bytes for an x-tuple packet.
    auto data = make_frame(sample_header(), 256);
    EXPECT_EQ(data.size(), 20u + 20u + 256u);
    net::Packet pkt;
    pkt.data = data;
    EXPECT_EQ(pkt.wire_bytes(), 256u + 78u);
}

TEST(Wire, ParseRejectsShortBuffer)
{
    std::vector<std::uint8_t> tiny(10, 0);
    EXPECT_FALSE(parse_header(tiny).has_value());
}

TEST(Wire, RewriteBitmapInPlace)
{
    auto data = make_frame(sample_header(), 8);
    rewrite_bitmap(data, 0x1ULL);
    auto parsed = parse_header(data);
    EXPECT_EQ(parsed->bitmap, 0x1ULL);
    // Other fields untouched.
    EXPECT_EQ(parsed->seq, 123456789u);
}

TEST(Wire, SlotRoundTrip)
{
    auto data = make_frame(sample_header(), 32 * 8);
    for (std::uint32_t i = 0; i < 32; ++i)
        write_slot(data, i, WireSlot{0x41424344u + i, 1000 + i});
    for (std::uint32_t i = 0; i < 32; ++i) {
        WireSlot s = read_slot(data, i);
        EXPECT_EQ(s.seg, 0x41424344u + i);
        EXPECT_EQ(s.value, 1000 + i);
    }
}

TEST(Wire, LongFrameRoundTrip)
{
    std::vector<KvTuple> tuples{
        {"a-rather-long-key-beyond-eight-bytes", 7},
        {"another_long_key_here", 0xffffffffu},
        {"third", 3},
    };
    AskHeader h;
    h.channel_id = 9;
    h.task_id = 4;
    h.seq = 77;
    auto data = make_long_frame(h, tuples);

    auto parsed_hdr = parse_header(data);
    ASSERT_TRUE(parsed_hdr.has_value());
    EXPECT_EQ(parsed_hdr->type, PacketType::kLongData);
    EXPECT_EQ(parsed_hdr->seq, 77u);

    auto parsed = parse_long_tuples(data);
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed[0], tuples[0]);
    EXPECT_EQ(parsed[1], tuples[1]);
    EXPECT_EQ(parsed[2], tuples[2]);
}

TEST(Wire, LongFrameEmpty)
{
    auto data = make_long_frame(AskHeader{}, {});
    EXPECT_TRUE(parse_long_tuples(data).empty());
}

TEST(Wire, ControlPacketHasNoPayload)
{
    AskHeader h;
    h.type = PacketType::kAck;
    h.seq = 5;
    net::Packet pkt = make_control_packet(3, 9, h);
    EXPECT_EQ(pkt.src, 3u);
    EXPECT_EQ(pkt.dst, 9u);
    EXPECT_EQ(pkt.data.size(), 40u);  // IP + ASK header only
    auto parsed = parse_header(pkt.data);
    EXPECT_EQ(parsed->type, PacketType::kAck);
    EXPECT_EQ(parsed->seq, 5u);
}

TEST(Wire, AllPacketTypesSurviveRoundTrip)
{
    for (auto t : {PacketType::kData, PacketType::kLongData, PacketType::kAck,
                   PacketType::kFin, PacketType::kFinAck, PacketType::kSwap,
                   PacketType::kSwapAck}) {
        AskHeader h;
        h.type = t;
        auto data = make_frame(h, 0);
        EXPECT_EQ(parse_header(data)->type, t);
    }
}

}  // namespace
}  // namespace ask::core
