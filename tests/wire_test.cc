/** Unit tests for the ASK wire format. */
#include <gtest/gtest.h>

#include "ask/wire.h"
#include "common/random.h"
#include "net/packet.h"

namespace ask::core {
namespace {

/** Random tuple batch: key lengths 0..40 cover empty, short, medium,
 *  and bypass-length keys; bytes span the full 0..255 range. */
std::vector<KvTuple>
fuzz_tuples(Rng& rng, std::size_t count)
{
    std::vector<KvTuple> tuples;
    tuples.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        KvTuple t;
        std::size_t len = rng.next_below(41);
        for (std::size_t j = 0; j < len; ++j)
            t.key.push_back(static_cast<char>(rng.next_below(256)));
        t.value = static_cast<Value>(rng.next_u64());
        tuples.push_back(std::move(t));
    }
    return tuples;
}

AskHeader
sample_header()
{
    AskHeader h;
    h.type = PacketType::kData;
    h.num_slots = 32;
    h.channel_id = 513;
    h.task_id = 0xdeadbeef;
    h.seq = 123456789;
    h.bitmap = 0xa5a5a5a5ULL;
    return h;
}

TEST(Wire, HeaderRoundTrip)
{
    auto data = make_frame(sample_header(), 0);
    auto parsed = parse_header(data);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, PacketType::kData);
    EXPECT_EQ(parsed->num_slots, 32);
    EXPECT_EQ(parsed->channel_id, 513);
    EXPECT_EQ(parsed->task_id, 0xdeadbeefu);
    EXPECT_EQ(parsed->seq, 123456789u);
    EXPECT_EQ(parsed->bitmap, 0xa5a5a5a5ULL);
}

TEST(Wire, FrameSizeMatchesPaperAccounting)
{
    // IP (20) + ASK header (20) + payload; +38 framing = the paper's
    // "8x + 78" wire bytes for an x-tuple packet.
    auto data = make_frame(sample_header(), 256);
    EXPECT_EQ(data.size(), 20u + 20u + 256u);
    net::Packet pkt;
    pkt.data = data;
    EXPECT_EQ(pkt.wire_bytes(), 256u + 78u);
}

TEST(Wire, ParseRejectsShortBuffer)
{
    std::vector<std::uint8_t> tiny(10, 0);
    EXPECT_FALSE(parse_header(tiny).has_value());
}

TEST(Wire, RewriteBitmapInPlace)
{
    auto data = make_frame(sample_header(), 8);
    rewrite_bitmap(data, 0x1ULL);
    auto parsed = parse_header(data);
    EXPECT_EQ(parsed->bitmap, 0x1ULL);
    // Other fields untouched.
    EXPECT_EQ(parsed->seq, 123456789u);
}

TEST(Wire, SlotRoundTrip)
{
    auto data = make_frame(sample_header(), 32 * 8);
    for (std::uint32_t i = 0; i < 32; ++i)
        write_slot(data, i, WireSlot{0x41424344u + i, 1000 + i});
    for (std::uint32_t i = 0; i < 32; ++i) {
        WireSlot s = read_slot(data, i);
        EXPECT_EQ(s.seg, 0x41424344u + i);
        EXPECT_EQ(s.value, 1000 + i);
    }
}

TEST(Wire, LongFrameRoundTrip)
{
    std::vector<KvTuple> tuples{
        {"a-rather-long-key-beyond-eight-bytes", 7},
        {"another_long_key_here", 0xffffffffu},
        {"third", 3},
    };
    AskHeader h;
    h.channel_id = 9;
    h.task_id = 4;
    h.seq = 77;
    auto data = make_long_frame(h, tuples);

    auto parsed_hdr = parse_header(data);
    ASSERT_TRUE(parsed_hdr.has_value());
    EXPECT_EQ(parsed_hdr->type, PacketType::kLongData);
    EXPECT_EQ(parsed_hdr->seq, 77u);

    auto parsed = parse_long_tuples(data);
    ASSERT_EQ(parsed.size(), 3u);
    EXPECT_EQ(parsed[0], tuples[0]);
    EXPECT_EQ(parsed[1], tuples[1]);
    EXPECT_EQ(parsed[2], tuples[2]);
}

TEST(Wire, LongFrameEmpty)
{
    auto data = make_long_frame(AskHeader{}, {});
    EXPECT_TRUE(parse_long_tuples(data).empty());
}

TEST(Wire, ControlPacketHasNoPayload)
{
    AskHeader h;
    h.type = PacketType::kAck;
    h.seq = 5;
    net::Packet pkt = make_control_packet(3, 9, h);
    EXPECT_EQ(pkt.src, 3u);
    EXPECT_EQ(pkt.dst, 9u);
    EXPECT_EQ(pkt.data.size(), 40u);  // IP + ASK header only
    auto parsed = parse_header(pkt.data);
    EXPECT_EQ(parsed->type, PacketType::kAck);
    EXPECT_EQ(parsed->seq, 5u);
}

TEST(Wire, AllPacketTypesSurviveRoundTrip)
{
    for (auto t : {PacketType::kData, PacketType::kLongData, PacketType::kAck,
                   PacketType::kFin, PacketType::kFinAck, PacketType::kSwap,
                   PacketType::kSwapAck}) {
        AskHeader h;
        h.type = t;
        auto data = make_frame(h, 0);
        EXPECT_EQ(parse_header(data)->type, t);
    }
}

TEST(Wire, ReduceOpRoundTripsInHeader)
{
    for (std::uint8_t id = 0; id < kNumReduceOps; ++id) {
        auto op = static_cast<ReduceOp>(id);
        AskHeader h = sample_header();
        h.op = op;
        auto parsed = parse_header(make_frame(h, 8));
        ASSERT_TRUE(parsed.has_value()) << "op " << unsigned(id);
        EXPECT_EQ(parsed->op, op);
        EXPECT_EQ(parsed->type, PacketType::kData);  // nibbles untangled

        // LONG_DATA carries the op the same way (the degraded bypass
        // path must not lose the channel's operator).
        AskHeader lh;
        lh.op = op;
        auto long_parsed = parse_header(make_long_frame(lh, {{"k", 1}}));
        ASSERT_TRUE(long_parsed.has_value());
        EXPECT_EQ(long_parsed->op, op);
        EXPECT_EQ(long_parsed->type, PacketType::kLongData);
    }
}

TEST(Wire, PreOpFramesParseAsSum)
{
    // Before the op nibble existed, byte 0 carried a bare type: high
    // nibble 0. Those bytes must keep parsing, as kAdd.
    auto data = make_frame(sample_header(), 0);
    EXPECT_EQ(data[20] >> 4, 0);  // kAdd frames ARE the legacy bytes
    EXPECT_EQ(parse_header(data)->op, ReduceOp::kAdd);
}

TEST(Wire, UnknownOpIdRejectedWithoutUb)
{
    // Every op nibble outside [0, kNumReduceOps) must be refused —
    // folding an unknown operator would silently corrupt aggregates.
    for (std::uint32_t id = kNumReduceOps; id < 16; ++id) {
        auto data = make_frame(sample_header(), 8);
        data[20] = static_cast<std::uint8_t>((id << 4) | (data[20] & 0x0F));
        EXPECT_FALSE(parse_header(data).has_value()) << "op " << id;
    }
}

// ---------------------------------------------------------------------------
// Property tests over fuzzed payloads
// ---------------------------------------------------------------------------

TEST(WireProperty, HeaderRoundTripsFuzzedFields)
{
    Rng rng = seeded_rng("wire_test", 101);
    for (int iter = 0; iter < 500; ++iter) {
        AskHeader h;
        h.type = static_cast<PacketType>(1 + rng.next_below(7));
        h.num_slots = static_cast<std::uint8_t>(rng.next_u64());
        h.channel_id = static_cast<ChannelId>(rng.next_u64());
        h.task_id = static_cast<TaskId>(rng.next_u64());
        h.seq = static_cast<Seq>(rng.next_u64());
        h.bitmap = rng.next_u64();
        h.op = static_cast<ReduceOp>(rng.next_below(kNumReduceOps));
        std::uint32_t payload =
            static_cast<std::uint32_t>(rng.next_below(300));

        auto data = make_frame(h, payload);
        auto parsed = parse_header(data);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->type, h.type);
        EXPECT_EQ(parsed->op, h.op);
        EXPECT_EQ(parsed->num_slots, h.num_slots);
        EXPECT_EQ(parsed->channel_id, h.channel_id);
        EXPECT_EQ(parsed->task_id, h.task_id);
        EXPECT_EQ(parsed->seq, h.seq);
        EXPECT_EQ(parsed->bitmap, h.bitmap);
    }
}

TEST(WireProperty, SlotsRoundTripFuzzedValues)
{
    Rng rng = seeded_rng("wire_test", 103);
    for (int iter = 0; iter < 200; ++iter) {
        std::uint32_t slots =
            1 + static_cast<std::uint32_t>(rng.next_below(64));
        auto data = make_frame(sample_header(), slots * 8);
        std::vector<WireSlot> want(slots);
        for (std::uint32_t i = 0; i < slots; ++i) {
            want[i] = {static_cast<std::uint32_t>(rng.next_u64()),
                       static_cast<Value>(rng.next_u64())};
            write_slot(data, i, want[i]);
        }
        for (std::uint32_t i = 0; i < slots; ++i) {
            WireSlot got = read_slot(data, i);
            EXPECT_EQ(got.seg, want[i].seg);
            EXPECT_EQ(got.value, want[i].value);
        }
    }
}

TEST(WireProperty, LongFrameRoundTripsFuzzedTuples)
{
    Rng rng = seeded_rng("wire_test", 107);
    for (int iter = 0; iter < 200; ++iter) {
        auto tuples = fuzz_tuples(rng, rng.next_below(20));
        auto data = make_long_frame(sample_header(), tuples);
        auto parsed = try_parse_long_tuples(data);
        ASSERT_TRUE(parsed.has_value());
        ASSERT_EQ(parsed->size(), tuples.size());
        for (std::size_t i = 0; i < tuples.size(); ++i)
            EXPECT_EQ((*parsed)[i], tuples[i]);
    }
}

TEST(WireProperty, TruncatedLongFramesRejectedWithoutUb)
{
    // Every proper prefix of a valid frame must parse to nullopt (or,
    // for prefixes that happen to end exactly on a tuple boundary
    // before the advertised count is reached, still must not read past
    // the buffer — ASAN/UBSAN guards the "without UB" half).
    Rng rng = seeded_rng("wire_test", 109);
    for (int iter = 0; iter < 50; ++iter) {
        auto tuples = fuzz_tuples(rng, 1 + rng.next_below(8));
        auto data = make_long_frame(sample_header(), tuples);
        for (std::size_t cut = 0; cut < data.size(); ++cut) {
            std::vector<std::uint8_t> prefix(data.begin(),
                                             data.begin() +
                                                 static_cast<std::ptrdiff_t>(
                                                     cut));
            EXPECT_FALSE(try_parse_long_tuples(prefix).has_value())
                << "prefix of " << cut << " bytes parsed";
        }
    }
}

TEST(WireProperty, CorruptedLengthFieldsRejectedWithoutUb)
{
    Rng rng = seeded_rng("wire_test", 113);
    for (int iter = 0; iter < 300; ++iter) {
        auto tuples = fuzz_tuples(rng, 1 + rng.next_below(8));
        auto data = make_long_frame(sample_header(), tuples);
        // Flip random payload bytes — counts and key lengths included.
        std::size_t flips = 1 + rng.next_below(4);
        for (std::size_t f = 0; f < flips; ++f) {
            std::size_t at = rng.next_below(data.size());
            data[at] = static_cast<std::uint8_t>(rng.next_u64());
        }
        // Must either parse (corruption hit only key/value bytes) or
        // return nullopt; either way no out-of-bounds access.
        auto parsed = try_parse_long_tuples(data);
        if (parsed.has_value())
            EXPECT_LE(parsed->size(), 0xffffu);
    }
}

TEST(WireProperty, RandomGarbageBuffersNeverParseOutOfBounds)
{
    Rng rng = seeded_rng("wire_test", 127);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<std::uint8_t> garbage(rng.next_below(120));
        for (auto& b : garbage)
            b = static_cast<std::uint8_t>(rng.next_u64());
        // Exercise both codec entry points used on receive paths.
        auto hdr = parse_header(garbage);
        auto tuples = try_parse_long_tuples(garbage);
        if (garbage.size() < 40)
            EXPECT_FALSE(hdr.has_value());
        if (garbage.size() < 42)
            EXPECT_FALSE(tuples.has_value());
    }
}

TEST(WireProperty, AsymmetricCountFieldRejected)
{
    // A frame advertising more tuples than its bytes carry must be
    // rejected, not read past the end.
    auto data = make_long_frame(sample_header(), {{"abcdefgh", 1}});
    // Payload starts at 40; bump the tuple count field to 0xffff.
    data[40] = 0xff;
    data[41] = 0xff;
    EXPECT_FALSE(try_parse_long_tuples(data).has_value());
}

}  // namespace
}  // namespace ask::core
