/** Unit tests for src/common: rng, hash, stats, strings, tables. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"

namespace ask {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next_u64() == b.next_u64();
    EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.next_in(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng r(9);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.next_exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(13);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependent)
{
    Rng a(21);
    Rng b = a.fork();
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Hash, Fnv1aKnownVector)
{
    // FNV-1a 64 of empty string is the offset basis.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(Hash, SeedsGiveIndependentFunctions)
{
    HashFn f(hash_seeds::kKeyPartition);
    HashFn g(hash_seeds::kAggregatorAddress);
    int same_bucket = 0;
    const int n = 4096, buckets = 32;
    for (int i = 0; i < n; ++i) {
        std::string k = "key" + std::to_string(i);
        same_bucket += f(k) % buckets == g(k) % buckets;
    }
    // Independent functions collide with probability ~1/buckets.
    EXPECT_NEAR(same_bucket / static_cast<double>(n), 1.0 / buckets, 0.02);
}

TEST(Hash, Uniformity)
{
    const int buckets = 16, n = 16000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < n; ++i)
        ++counts[hash64("k" + std::to_string(i), 99) % buckets];
    for (int c : counts)
        EXPECT_NEAR(c, n / buckets, n / buckets * 0.25);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, QuantilesAndCdf)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.cdf_at(50.0), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(s.cdf_at(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.cdf_at(1000.0), 1.0);
}

TEST(Samples, AddAfterQuantileInvalidatesCache)
{
    Samples s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(-100.0);  // clamps to bucket 0
    h.add(100.0);   // clamps to last bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(StringUtil, Strf)
{
    EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(StringUtil, FmtBytes)
{
    EXPECT_EQ(fmt_bytes(512), "512.00 B");
    EXPECT_EQ(fmt_bytes(1536), "1.50 KiB");
    EXPECT_EQ(fmt_bytes(3ull * 1024 * 1024 * 1024), "3.00 GiB");
}

TEST(StringUtil, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, U64KeyNulFreeAndUnique)
{
    std::set<std::string> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        std::string k = u64_key(i);
        EXPECT_EQ(k.find('\0'), std::string::npos);
        EXPECT_FALSE(k.empty());
        EXPECT_TRUE(seen.insert(k).second) << "collision at " << i;
    }
    // Also distinct for large values.
    EXPECT_NE(u64_key(1ull << 40), u64_key((1ull << 40) + 1));
}

TEST(Units, GbpsConversion)
{
    // 12.5 bytes/ns == 100 Gbit/s.
    EXPECT_NEAR(units::gbps(12500, 1000), 100.0, 1e-9);
    EXPECT_EQ(units::gbps(100, 0), 0.0);
}

TEST(Units, SerializeNs)
{
    // 1250 bytes at 100 Gbps = 100 ns.
    EXPECT_EQ(units::serialize_ns(1250, 100.0), 100);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"a", "long-header"});
    t.row({"xxxx", "1"});
    std::string s = t.to_string();
    EXPECT_NE(s.find("long-header"), std::string::npos);
    EXPECT_NE(s.find("xxxx"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

}  // namespace
}  // namespace ask
