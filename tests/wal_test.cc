/**
 * Write-ahead log tests: framing round-trips, merkle-digest integrity,
 * the two corruption classes (torn tail tolerated, damaged record
 * rejected with a typed error and no UB), and the pure daemon-state
 * fold whose idempotence the crash-recovery proof rides on.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ask/wal.h"
#include "common/logging.h"

namespace ask::core {
namespace {

WalRecord
data_record(TaskId task, std::uint32_t channel, Seq seq,
            std::vector<std::pair<std::string, std::uint64_t>> kvs)
{
    WalRecord r;
    r.kind = WalRecordKind::kRxData;
    r.task = task;
    r.channel = channel;
    r.seq = seq;
    r.kvs = std::move(kvs);
    return r;
}

WalRecord
start_record(TaskId task, std::uint32_t senders, bool swaps_disabled)
{
    WalRecord r;
    r.kind = WalRecordKind::kRxTaskStart;
    r.task = task;
    r.arg0 = senders;
    r.arg1 = swaps_disabled ? 1 : 0;
    r.kvs = {{"liveness_ns", 0}, {"start_time", 100}};
    return r;
}

std::vector<WalRecord>
sample_records()
{
    std::vector<WalRecord> rs;
    rs.push_back(start_record(7, 2, false));
    rs.push_back(data_record(7, 3, 0, {{"alpha", 4}, {"beta", 9}}));
    WalRecord fin;
    fin.kind = WalRecordKind::kRxFin;
    fin.task = 7;
    fin.channel = 3;
    rs.push_back(fin);
    return rs;
}

// ---------------------------------------------------------------------------
// Framing and integrity.
// ---------------------------------------------------------------------------

TEST(Wal, RecordsRoundTripExactly)
{
    Wal wal("test");
    std::vector<WalRecord> rs = sample_records();
    for (const WalRecord& r : rs)
        wal.append(r);

    WalReplayStatus st;
    std::vector<WalRecord> replayed = wal.replay(&st);
    EXPECT_FALSE(st.torn_tail);
    EXPECT_FALSE(st.corrupt);
    EXPECT_EQ(st.records, rs.size());
    EXPECT_EQ(st.valid_bytes, wal.size_bytes());
    ASSERT_EQ(replayed.size(), rs.size());
    for (std::size_t i = 0; i < rs.size(); ++i)
        EXPECT_EQ(replayed[i], rs[i]) << "record " << i;
    EXPECT_TRUE(wal.verify());
}

TEST(Wal, EmptyLogIsCleanAndVerifies)
{
    Wal wal("empty");
    WalReplayStatus st;
    EXPECT_TRUE(wal.replay(&st).empty());
    EXPECT_FALSE(st.torn_tail);
    EXPECT_FALSE(st.corrupt);
    EXPECT_TRUE(wal.verify());
    EXPECT_EQ(wal.digest(), 0u);
}

TEST(Wal, TornTailYieldsTheDurablePrefix)
{
    Wal wal("torn");
    for (const WalRecord& r : sample_records())
        wal.append(r);
    // Rip a few bytes off the last record: a crash mid-append.
    wal.truncate_tail(3);

    WalReplayStatus st;
    std::vector<WalRecord> replayed = wal.replay(&st);
    EXPECT_TRUE(st.torn_tail);
    EXPECT_FALSE(st.corrupt);
    EXPECT_EQ(replayed.size(), 2u);  // the prefix before the tear
    EXPECT_EQ(replayed[0], sample_records()[0]);
    // The full-log integrity check must still notice the missing tail.
    EXPECT_FALSE(wal.verify());
}

TEST(Wal, FrameBoundaryTruncationIsStillATornTail)
{
    // Truncation that lands exactly on a frame boundary leaves a byte
    // image that parses cleanly — only the segment list betrays it.
    Wal wal("boundary");
    std::vector<WalRecord> rs = sample_records();
    wal.append(rs[0]);
    std::size_t after_first = wal.size_bytes();
    wal.append(rs[1]);
    wal.truncate_tail(wal.size_bytes() - after_first);

    WalReplayStatus st;
    std::vector<WalRecord> replayed = wal.replay(&st);
    EXPECT_EQ(replayed.size(), 1u);
    EXPECT_TRUE(st.torn_tail);
    EXPECT_FALSE(st.corrupt);
    EXPECT_FALSE(wal.verify());
}

TEST(Wal, CorruptRecordIsReportedWithoutThrowing)
{
    Wal wal("corrupt");
    for (const WalRecord& r : sample_records())
        wal.append(r);
    // Damage a payload byte of the first record (offset past the 8-byte
    // frame header): media corruption, not a torn append.
    wal.flip_byte(10);

    WalReplayStatus st;
    std::vector<WalRecord> replayed = wal.replay(&st);
    EXPECT_TRUE(st.corrupt);
    EXPECT_TRUE(replayed.empty());  // nothing before the damage
    EXPECT_FALSE(wal.verify());
}

TEST(Wal, CorruptRecordThrowsTypedErrorWhenUnchecked)
{
    Wal wal("throwing");
    for (const WalRecord& r : sample_records())
        wal.append(r);
    wal.flip_byte(10);
    EXPECT_THROW(wal.replay(), StateError);
}

TEST(Wal, CorruptionAfterAPrefixKeepsThePrefix)
{
    Wal wal("prefix");
    std::vector<WalRecord> rs = sample_records();
    for (const WalRecord& r : rs)
        wal.append(r);
    // Damage inside the *last* record's frame.
    wal.flip_byte(wal.size_bytes() - 2);

    WalReplayStatus st;
    std::vector<WalRecord> replayed = wal.replay(&st);
    EXPECT_TRUE(st.corrupt);
    ASSERT_EQ(replayed.size(), 2u);
    EXPECT_EQ(replayed[0], rs[0]);
    EXPECT_EQ(replayed[1], rs[1]);
}

TEST(Wal, DigestChangesWithEveryAppend)
{
    Wal wal("digest");
    std::uint64_t last = wal.digest();
    for (const WalRecord& r : sample_records()) {
        wal.append(r);
        EXPECT_NE(wal.digest(), last);
        last = wal.digest();
    }
    EXPECT_EQ(wal.records(), 3u);
    EXPECT_EQ(wal.segment_hashes().size(), 3u);
}

TEST(Wal, ClearDropsEverything)
{
    Wal wal("cleared");
    for (const WalRecord& r : sample_records())
        wal.append(r);
    wal.clear();
    EXPECT_EQ(wal.records(), 0u);
    EXPECT_EQ(wal.size_bytes(), 0u);
    EXPECT_EQ(wal.digest(), 0u);
    EXPECT_TRUE(wal.verify());
}

TEST(Wal, AppendCounterRoutesToExternalStat)
{
    Wal wal("counted");
    std::uint64_t count = 0;
    wal.set_append_counter(&count);
    for (const WalRecord& r : sample_records())
        wal.append(r);
    EXPECT_EQ(count, 3u);
}

TEST(WalStore, NamesOneLogPerProcess)
{
    WalStore store;
    EXPECT_EQ(store.host_wal(0).name(), "host0");
    EXPECT_EQ(store.host_wal(3).name(), "host3");
    EXPECT_EQ(store.controller_wal().name(), "controller");
    // References are stable: the same process always gets the same log.
    store.host_wal(0).append(sample_records()[0]);
    EXPECT_EQ(store.host_wal(0).records(), 1u);
}

TEST(Wal, DescribeReportsTheLog)
{
    Wal wal("described");
    for (const WalRecord& r : sample_records())
        wal.append(r);
    obs::Json d = wal.describe();
    ASSERT_NE(d.find("name"), nullptr);
    EXPECT_EQ(d.find("name")->as_string(), "described");
    EXPECT_EQ(d.find("records")->as_int(), 3);
    EXPECT_FALSE(d.find("corrupt")->as_bool());
    EXPECT_EQ(d.find("log")->size(), 3u);
}

// ---------------------------------------------------------------------------
// The pure daemon-state fold.
// ---------------------------------------------------------------------------

TEST(WalRebuild, FoldIsIdempotent)
{
    std::vector<WalRecord> log;
    log.push_back(start_record(1, 2, false));
    log.push_back(data_record(1, 0, 0, {{"a", 1}, {"b", 2}}));
    log.push_back(data_record(1, 1, 0, {{"a", 3}}));
    WalRecord cp;
    cp.kind = WalRecordKind::kSeqCheckpoint;
    cp.channel = 0;
    cp.seq = 64;
    log.push_back(cp);

    WalDaemonState once = rebuild_daemon_state(log, AggOp::kAdd);
    WalDaemonState twice = rebuild_daemon_state(log, AggOp::kAdd);
    EXPECT_EQ(once, twice);
    ASSERT_EQ(once.rx_tasks.size(), 1u);
    const WalRxTaskState& t = once.rx_tasks.at(1);
    EXPECT_EQ(t.local.at("a"), 4u);
    EXPECT_EQ(t.local.at("b"), 2u);
    EXPECT_EQ(t.observed.size(), 2u);
    EXPECT_EQ(t.packets_received, 2u);
    EXPECT_EQ(t.tuples_aggregated_locally, 3u);
}

TEST(WalRebuild, DoneRemovesTheTask)
{
    std::vector<WalRecord> log;
    log.push_back(start_record(1, 1, false));
    log.push_back(data_record(1, 0, 0, {{"a", 1}}));
    WalRecord done;
    done.kind = WalRecordKind::kRxTaskDone;
    done.task = 1;
    log.push_back(done);

    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    EXPECT_TRUE(state.rx_tasks.empty());
}

TEST(WalRebuild, SubmitsConcatenateAndForgetRemoves)
{
    WalRecord s1;
    s1.kind = WalRecordKind::kSendSubmit;
    s1.task = 5;
    s1.arg0 = 2;  // receiver host
    s1.kvs = {{"x", 1}, {"y", 2}};
    WalRecord s2 = s1;
    s2.kvs = {{"z", 3}};

    WalDaemonState state = rebuild_daemon_state({s1, s2}, AggOp::kAdd);
    ASSERT_EQ(state.sends.size(), 1u);
    const WalSendState& send = state.sends.at(5);
    EXPECT_EQ(send.receiver, 2u);
    ASSERT_EQ(send.stream.size(), 3u);
    EXPECT_EQ(send.stream[2].key, "z");

    WalRecord forget;
    forget.kind = WalRecordKind::kSendForget;
    forget.task = 5;
    state = rebuild_daemon_state({s1, s2, forget}, AggOp::kAdd);
    EXPECT_TRUE(state.sends.empty());
}

TEST(WalRebuild, ResetWipesProgressButKeepsObservedSeqs)
{
    std::vector<WalRecord> log;
    log.push_back(start_record(1, 1, false));
    log.push_back(data_record(1, 0, 0, {{"a", 1}}));
    log.push_back(data_record(1, 0, 1, {{"a", 1}}));
    WalRecord reset;
    reset.kind = WalRecordKind::kRxReset;
    reset.task = 1;
    reset.kvs = {{"drain_until", 5000}};
    log.push_back(reset);
    log.push_back(data_record(1, 0, 2, {{"b", 7}}));

    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    const WalRxTaskState& t = state.rx_tasks.at(1);
    // Aggregate restarted from scratch after the reset...
    EXPECT_EQ(t.local.count("a"), 0u);
    EXPECT_EQ(t.local.at("b"), 7u);
    EXPECT_EQ(t.packets_received, 1u);
    // ...but the duplicate-filter history survives it.
    EXPECT_EQ(t.observed.size(), 3u);
    EXPECT_EQ(t.restart_drain_until, 5000u);
    // One reset, no recoveries: generation 2 + 1.
    EXPECT_EQ(t.generation, 3u);
}

TEST(WalRebuild, GenerationOvershootsEveryPreCrashHandout)
{
    std::vector<WalRecord> log;
    WalRecord recovered;
    recovered.kind = WalRecordKind::kHostRecovered;
    log.push_back(recovered);
    log.push_back(recovered);  // host crashed twice before
    log.push_back(start_record(9, 1, true));

    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    EXPECT_EQ(state.recoveries, 2u);
    EXPECT_EQ(state.rx_tasks.at(9).generation, 4u);  // 2 + 0 resets + 2
    EXPECT_TRUE(state.rx_tasks.at(9).swaps_disabled);
}

TEST(WalRebuild, ResumeSeqIsTheMaxCheckpoint)
{
    auto checkpoint = [](std::uint32_t channel, Seq seq) {
        WalRecord r;
        r.kind = WalRecordKind::kSeqCheckpoint;
        r.channel = channel;
        r.seq = seq;
        return r;
    };
    WalDaemonState state = rebuild_daemon_state(
        {checkpoint(0, 64), checkpoint(1, 64), checkpoint(0, 192),
         checkpoint(0, 128)},
        AggOp::kAdd);
    EXPECT_EQ(state.resume_seq.at(0), 192u);
    EXPECT_EQ(state.resume_seq.at(1), 64u);
    EXPECT_EQ(state.resume_seq.count(2), 0u);
}

TEST(WalRebuild, FoldHonorsTheAggregationOp)
{
    std::vector<WalRecord> log;
    log.push_back(start_record(1, 1, false));
    log.push_back(data_record(1, 0, 0, {{"a", 9}}));
    log.push_back(data_record(1, 0, 1, {{"a", 3}}));

    EXPECT_EQ(rebuild_daemon_state(log, AggOp::kAdd).rx_tasks.at(1).local.at(
                  "a"),
              12u);
    EXPECT_EQ(rebuild_daemon_state(log, AggOp::kMax).rx_tasks.at(1).local.at(
                  "a"),
              9u);
    EXPECT_EQ(rebuild_daemon_state(log, AggOp::kMin).rx_tasks.at(1).local.at(
                  "a"),
              3u);
}

TEST(WalRebuild, PerTaskOpKvOverridesTheDefault)
{
    // A journalled "op" kv pins the task's operator; the default_op
    // argument only covers pre-upgrade logs that never recorded one.
    std::vector<WalRecord> log;
    WalRecord start = start_record(1, 1, false);
    start.kvs.emplace_back("op", static_cast<std::uint64_t>(AggOp::kMax));
    log.push_back(start);
    log.push_back(data_record(1, 0, 0, {{"a", 9}}));
    log.push_back(data_record(1, 0, 1, {{"a", 3}}));

    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    EXPECT_EQ(state.rx_tasks.at(1).op, AggOp::kMax);
    EXPECT_EQ(state.rx_tasks.at(1).local.at("a"), 9u);

    // An explicit "op" of 0 is kAdd, not "absent": it must win over a
    // non-add default.
    WalRecord start_add = start_record(2, 1, false);
    start_add.kvs.emplace_back("op", 0);
    std::vector<WalRecord> log2 = {start_add,
                                   data_record(2, 0, 0, {{"a", 9}}),
                                   data_record(2, 0, 1, {{"a", 3}})};
    state = rebuild_daemon_state(log2, AggOp::kMin);
    EXPECT_EQ(state.rx_tasks.at(2).op, AggOp::kAdd);
    EXPECT_EQ(state.rx_tasks.at(2).local.at("a"), 12u);

    // No "op" kv at all: the caller's default applies.
    std::vector<WalRecord> log3 = {start_record(3, 1, false),
                                   data_record(3, 0, 0, {{"a", 9}}),
                                   data_record(3, 0, 1, {{"a", 3}})};
    state = rebuild_daemon_state(log3, AggOp::kMin);
    EXPECT_EQ(state.rx_tasks.at(3).op, AggOp::kMin);
    EXPECT_EQ(state.rx_tasks.at(3).local.at("a"), 3u);
}

TEST(WalRebuild, SendSubmitRestoresItsOp)
{
    // The archived stream is journalled already lifted; arg1 carries the
    // op so replay_task re-submits without a second lift, under the
    // operator the application chose.
    WalRecord s;
    s.kind = WalRecordKind::kSendSubmit;
    s.task = 5;
    s.arg0 = 2;  // receiver host
    s.arg1 = static_cast<std::uint32_t>(AggOp::kCount);
    s.kvs = {{"x", 1}};
    WalDaemonState state = rebuild_daemon_state({s}, AggOp::kAdd);
    EXPECT_EQ(state.sends.at(5).op, AggOp::kCount);

    // Pre-op records carry arg1 == 0, which is kAdd — the only operator
    // that existed when they were written.
    s.arg1 = 0;
    state = rebuild_daemon_state({s}, AggOp::kMax);
    EXPECT_EQ(state.sends.at(5).op, AggOp::kAdd);
}

TEST(WalRebuild, DataForUnknownTaskIsDropped)
{
    // A done task's late records (or a controller journal mixed in) must
    // not resurrect state.
    std::vector<WalRecord> log;
    log.push_back(data_record(42, 0, 0, {{"ghost", 1}}));
    WalRecord alloc;
    alloc.kind = WalRecordKind::kAlloc;
    alloc.task = 1;
    log.push_back(alloc);
    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    EXPECT_TRUE(state.rx_tasks.empty());
    EXPECT_TRUE(state.sends.empty());
}

TEST(WalRebuild, SwapCommitMergesFetchedAggregates)
{
    std::vector<WalRecord> log;
    log.push_back(start_record(1, 1, false));
    log.push_back(data_record(1, 0, 0, {{"a", 1}}));
    WalRecord swap;
    swap.kind = WalRecordKind::kRxSwapCommit;
    swap.task = 1;
    swap.seq = 2;  // new epoch
    swap.kvs = {{"a", 10}, {"c", 4}};
    log.push_back(swap);

    WalDaemonState state = rebuild_daemon_state(log, AggOp::kAdd);
    const WalRxTaskState& t = state.rx_tasks.at(1);
    EXPECT_EQ(t.local.at("a"), 11u);
    EXPECT_EQ(t.local.at("c"), 4u);
    EXPECT_EQ(t.committed_epoch, 2u);
    EXPECT_EQ(t.swaps, 1u);
    EXPECT_EQ(t.tuples_fetched_from_switch, 2u);
}

}  // namespace
}  // namespace ask::core
