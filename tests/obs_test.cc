/**
 * Observability-layer tests: log-linear histogram quantile error
 * bounds, metrics-snapshot merge associativity, the pinned golden
 * shape of the ask-bench/v1 JSON report, and packet-lifecycle chain
 * reconstruction through loss and a switch reboot.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ask/cluster.h"
#include "bench_util.h"
#include "common/random.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/chaos.h"

namespace ask::core {
namespace {

using units::kMicrosecond;

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, ExactForSmallValues)
{
    obs::LogHistogram h;
    for (std::uint64_t v = 0; v < obs::LogHistogram::kSubBuckets; ++v)
        h.observe(v);
    EXPECT_EQ(h.count(), obs::LogHistogram::kSubBuckets);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), obs::LogHistogram::kSubBuckets - 1);
    // Values below kSubBuckets land in exact unit buckets.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), obs::LogHistogram::kSubBuckets - 1);
}

TEST(LogHistogram, QuantileRelativeErrorWithinOneEighth)
{
    obs::LogHistogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.observe(v);
    for (double q : {0.10, 0.25, 0.50, 0.90, 0.95, 0.99}) {
        double exact = q * 100000.0;
        auto got = static_cast<double>(h.quantile(q));
        // Bucket width <= value / kSubBuckets, and quantile() reports
        // the bucket's upper edge, so the estimate never undershoots
        // by more than one observation and never overshoots by more
        // than 1/8 relative.
        EXPECT_GE(got, exact - 1.0) << "q=" << q;
        EXPECT_LE(got, exact * (1.0 + 1.0 / 8.0)) << "q=" << q;
    }
    EXPECT_EQ(h.quantile(1.0), 100000u);  // clamped to the observed max
}

TEST(LogHistogram, MergeMatchesCombinedObservation)
{
    Rng rng = seeded_rng("obs_test", 7);
    obs::LogHistogram a;
    obs::LogHistogram b;
    obs::LogHistogram both;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.next_below(1u << 20);
        (i % 2 ? a : b).observe(v);
        both.observe(v);
    }
    a.merge(b);
    EXPECT_EQ(a.summary_json().dump(), both.summary_json().dump());
}

// ---------------------------------------------------------------------------
// MetricsSnapshot merge
// ---------------------------------------------------------------------------

obs::MetricsSnapshot
snapshot_with(std::uint64_t counter_base, double gauge, std::uint64_t hist_lo,
              std::int64_t series_t)
{
    obs::MetricsRegistry reg;
    reg.counter("demo.events").add(counter_base);
    reg.counter("demo.shared").add(counter_base * 3);
    reg.gauge("demo.level").set(gauge);
    for (std::uint64_t v = hist_lo; v < hist_lo + 100; ++v)
        reg.histogram("demo.latency_ns").observe(v);
    reg.series("demo.goodput").record(series_t, gauge);
    return reg.snapshot();
}

TEST(MetricsSnapshot, MergeIsAssociative)
{
    obs::MetricsSnapshot a = snapshot_with(10, 1.0, 1, 100);
    obs::MetricsSnapshot b = snapshot_with(20, 2.0, 1000, 200);
    obs::MetricsSnapshot c = snapshot_with(30, 3.0, 50000, 300);

    obs::MetricsSnapshot left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);

    obs::MetricsSnapshot bc = b;     // a + (b + c)
    bc.merge(c);
    obs::MetricsSnapshot right = a;
    right.merge(bc);

    EXPECT_EQ(left.to_json().dump(2), right.to_json().dump(2));
    EXPECT_EQ(left.counter("demo.events"), 60u);
    EXPECT_EQ(left.counter("demo.shared"), 180u);
    ASSERT_NE(left.histogram("demo.latency_ns"), nullptr);
    EXPECT_EQ(left.histogram("demo.latency_ns")->count(), 300u);
}

TEST(MetricsRegistry, ExposedSourcesSumAcrossComponents)
{
    // Two "daemons" expose the same metric name from their own live
    // fields; the snapshot sums the sources.
    std::uint64_t daemon0_field = 5;
    std::uint64_t daemon1_field = 7;
    obs::MetricsRegistry reg;
    reg.expose("host.retransmissions", &daemon0_field, "host");
    reg.expose("host.retransmissions", &daemon1_field, "host");
    EXPECT_EQ(reg.snapshot().counter("host.retransmissions"), 12u);
    daemon1_field += 100;  // live field: no re-registration needed
    EXPECT_EQ(reg.snapshot().counter("host.retransmissions"), 112u);
    reg.assert_disjoint_owners("host.");
}

// ---------------------------------------------------------------------------
// Golden ask-bench/v1 report shape
// ---------------------------------------------------------------------------

TEST(BenchJson, GoldenSchema)
{
    std::string dir = ::testing::TempDir();
    ASSERT_EQ(::setenv("ASK_BENCH_OUT_DIR", dir.c_str(), 1), 0);

    {
        const char* argv[] = {"obs_test", "--smoke"};
        bench::BenchReport report("golden", "schema pin for ask-bench/v1",
                                  2, const_cast<char**>(argv));
        report.param("hosts", std::uint32_t{4});
        report.param("tuples", std::uint64_t{1200});
        report.row({{"series", "ask"}, {"x", 1}, {"goodput_gbps", 12.5}});
        report.row({{"series", "strawman"}, {"x", 1}, {"goodput_gbps", 3.25}});
        report.note("pinned by tests/obs_test.cc");

        obs::MetricsRegistry reg;
        reg.counter("demo.events").add(3);
        reg.histogram("demo.latency_ns").observe(100);
        report.metrics(reg.snapshot().to_json());
        report.write();
    }
    ASSERT_EQ(::unsetenv("ASK_BENCH_OUT_DIR"), 0);

    std::ifstream in(dir + "/BENCH_golden.json");
    ASSERT_TRUE(in.good()) << "report not written to " << dir;
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    std::optional<obs::Json> produced = obs::Json::parse(buf.str(), &error);
    ASSERT_TRUE(produced.has_value()) << error;

    // The golden document. Any change here is a schema break for every
    // consumer of BENCH_*.json and must bump "ask-bench/v1".
    const std::string golden_text = R"json({
      "schema": "ask-bench/v1",
      "experiment": "golden",
      "description": "schema pin for ask-bench/v1",
      "mode": "smoke",
      "params": {"hosts": 4, "tuples": 1200},
      "rows": [
        {"series": "ask", "x": 1, "goodput_gbps": 12.5},
        {"series": "strawman", "x": 1, "goodput_gbps": 3.25}
      ],
      "notes": ["pinned by tests/obs_test.cc"],
      "metrics": {
        "counters": {"demo.events": 3},
        "gauges": {},
        "histograms": {
          "demo.latency_ns": {"count": 1, "sum": 100, "min": 100,
                              "max": 100, "mean": 100.0, "p50": 100,
                              "p95": 100, "p99": 100}
        },
        "series": {}
      }
    })json";
    std::optional<obs::Json> golden = obs::Json::parse(golden_text, &error);
    ASSERT_TRUE(golden.has_value()) << error;

    // Comparing re-dumps pins both the values and the key order.
    EXPECT_EQ(produced->dump(2), golden->dump(2));
}

// ---------------------------------------------------------------------------
// Packet-lifecycle tracing
// ---------------------------------------------------------------------------

TEST(Trace, RingOverwritesOldestAndFiltersTasks)
{
    obs::PacketTracer tracer(/*capacity=*/8);
    tracer.trace_task(1);
    for (std::uint32_t seq = 0; seq < 12; ++seq)
        tracer.record(seq, /*task=*/1, /*channel=*/0, seq,
                      obs::TraceStage::kTx);
    tracer.record(99, /*task=*/2, /*channel=*/0, 99,
                  obs::TraceStage::kTx);  // not traced
    EXPECT_EQ(tracer.size(), 8u);
    std::vector<obs::TraceSpan> spans = tracer.spans();
    ASSERT_EQ(spans.size(), 8u);
    EXPECT_EQ(spans.front().seq, 4u);  // oldest four overwritten
    EXPECT_EQ(spans.back().seq, 11u);
}

#if ASK_TRACE_ENABLED

ClusterConfig
trace_config()
{
    ClusterConfig cc;
    cc.num_hosts = 3;
    cc.ask.max_hosts = 3;
    cc.ask.num_aas = 8;
    cc.ask.aggregators_per_aa = 128;
    cc.ask.medium_groups = 2;
    cc.ask.window = 16;
    cc.ask.swap_threshold_packets = 0;
    return cc;
}

KvStream
trace_stream(Rng& rng, std::size_t n)
{
    KvStream s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back({"k" + std::to_string(rng.next_below(50)),
                     static_cast<Value>(1 + rng.next_below(5))});
    return s;
}

TEST(Trace, ChainReconstructionThroughLossAndReboot)
{
    ClusterConfig cc = trace_config();
    cc.seed = 31;
    Rng rng = seeded_rng("obs_test", 31);
    std::vector<StreamSpec> streams{{1, trace_stream(rng, 800)},
                                    {2, trace_stream(rng, 800)}};

    // Dry-run fault-free to learn the finish time, then aim a reboot at
    // the middle of a lossy run so the trace sees retransmits + replay.
    sim::SimTime undisturbed;
    {
        AskCluster dry(cc);
        TaskResult r = dry.run_task(7, 0, streams);
        ASSERT_TRUE(r.ok()) << r.report.detail;
        undisturbed = r.report.finish_time;
    }

    cc.faults = net::FaultSpec::lossy(0.15, 0.0, 0.0);
    AskCluster cluster(cc);
    sim::ChaosPlan plan;
    plan.switch_reboot(undisturbed / 2, 200 * kMicrosecond);
    cluster.arm_chaos(plan);

    TaskResult r = cluster.run_task(7, 0, streams,
                                    {.region_len = 32, .trace = true});
    ASSERT_TRUE(r.ok()) << r.report.detail;

    std::vector<obs::TraceSpan> spans = cluster.tracer().spans();
    ASSERT_FALSE(spans.empty());

    bool saw_retransmit = false;
    bool saw_replay = false;
    for (const obs::TraceSpan& s : spans) {
        if (s.stage == obs::TraceStage::kTx &&
            (s.flags & obs::kTraceFlagRetransmit))
            saw_retransmit = true;
        if (s.flags & obs::kTraceFlagReplay)
            saw_replay = true;
    }
    EXPECT_TRUE(saw_retransmit) << "15% loss produced no retransmit span";
    EXPECT_TRUE(saw_replay) << "switch reboot produced no replay span";

    // Reconstruct the lifecycle of every packetized (channel, seq):
    // chains start at kPacketize, carry at least one transmission, stay
    // time-ordered, and never include task-level spans.
    std::size_t chains_checked = 0;
    for (const obs::TraceSpan& s : spans) {
        if (s.stage != obs::TraceStage::kPacketize)
            continue;
        std::vector<obs::TraceSpan> chain =
            cluster.tracer().chain(s.channel, s.seq);
        ASSERT_FALSE(chain.empty());
        EXPECT_EQ(chain.front().stage, obs::TraceStage::kPacketize);
        bool has_tx = false;
        for (std::size_t i = 0; i < chain.size(); ++i) {
            if (i > 0)
                EXPECT_LE(chain[i - 1].t_ns, chain[i].t_ns);
            EXPECT_NE(chain[i].stage, obs::TraceStage::kSubmit);
            EXPECT_NE(chain[i].stage, obs::TraceStage::kReplay);
            EXPECT_NE(chain[i].stage, obs::TraceStage::kFinalize);
            if (chain[i].stage == obs::TraceStage::kTx)
                has_tx = true;
        }
        EXPECT_TRUE(has_tx) << "chain for seq " << s.seq << " never hit kTx";
        ++chains_checked;
    }
    EXPECT_GT(chains_checked, 10u);
}

#else  // !ASK_TRACE_ENABLED

TEST(Trace, ChainReconstructionThroughLossAndReboot)
{
    GTEST_SKIP() << "tracing compiled out (ASK_ENABLE_TRACE=OFF)";
}

#endif

}  // namespace
}  // namespace ask::core
