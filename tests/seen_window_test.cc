/**
 * Tests of the reliability receive windows (§3.3), including the
 * property-based equivalence of the compact and plain designs.
 */
#include <gtest/gtest.h>

#include <vector>

#include "ask/seen_window.h"
#include "common/random.h"

namespace ask::core {
namespace {

constexpr std::uint32_t kW = 16;

TEST(PlainSeen, FreshThenDuplicate)
{
    PlainSeen s(kW);
    EXPECT_EQ(s.observe(0), SeenOutcome::kFresh);
    EXPECT_EQ(s.observe(0), SeenOutcome::kDuplicate);
    EXPECT_EQ(s.observe(1), SeenOutcome::kFresh);
    EXPECT_EQ(s.observe(1), SeenOutcome::kDuplicate);
}

TEST(CompactSeen, FreshThenDuplicate)
{
    CompactSeen s(kW);
    EXPECT_EQ(s.observe(0), SeenOutcome::kFresh);
    EXPECT_EQ(s.observe(0), SeenOutcome::kDuplicate);
    EXPECT_EQ(s.observe(1), SeenOutcome::kFresh);
    EXPECT_EQ(s.observe(1), SeenOutcome::kDuplicate);
}

TEST(CompactSeen, UsesHalfTheState)
{
    PlainSeen p(256);
    CompactSeen c(256);
    EXPECT_EQ(p.state_bits(), 512u);
    EXPECT_EQ(c.state_bits(), 256u);
}

TEST(CompactSeen, SegmentBoundaryCases)
{
    // Walk several full segments in order: every first appearance must be
    // fresh even though the underlying bits are reused with flipped
    // polarity (cases 1-4 of §3.3).
    CompactSeen s(kW);
    for (Seq q = 0; q < 6 * kW; ++q)
        EXPECT_EQ(s.observe(q), SeenOutcome::kFresh) << "seq " << q;
}

TEST(PlainSeen, StalePacketDropped)
{
    PlainSeen s(kW);
    for (Seq q = 0; q <= kW; ++q)
        s.observe(q);
    // seq 0 is now <= max_seq - W: a very late duplicate must be
    // classified stale, not fresh (it would corrupt a future bit).
    EXPECT_EQ(s.observe(0), SeenOutcome::kStale);
}

TEST(CompactSeen, StalePacketDropped)
{
    CompactSeen s(kW);
    for (Seq q = 0; q <= kW; ++q)
        s.observe(q);
    EXPECT_EQ(s.observe(0), SeenOutcome::kStale);
}

TEST(CompactSeen, OutOfOrderWithinWindow)
{
    CompactSeen s(kW);
    // Deliver a window's worth in reverse order: all fresh.
    std::vector<Seq> seqs;
    for (Seq q = 0; q < kW; ++q)
        seqs.push_back(kW - 1 - q);
    for (Seq q : seqs)
        EXPECT_EQ(s.observe(q), SeenOutcome::kFresh) << "seq " << q;
    for (Seq q : seqs)
        EXPECT_EQ(s.observe(q), SeenOutcome::kDuplicate) << "seq " << q;
}

TEST(CompactSeen, RetransmitAcrossSegmentBoundary)
{
    // The compact design's polarity trick relies on the sender contract:
    // the window only slides past ACKed (observed) sequences, so observe
    // everything up to the boundary first.
    CompactSeen s(kW);
    for (Seq q = 0; q < kW + kW / 2; ++q)
        EXPECT_EQ(s.observe(q), SeenOutcome::kFresh);
    // Retransmissions straddling the even/odd segment boundary, all
    // still within the current window (max = 1.5W, so > 0.5W is fresh).
    for (Seq q = kW - kW / 2; q < kW + kW / 2; ++q)
        EXPECT_EQ(s.observe(q), SeenOutcome::kDuplicate) << "seq " << q;
}

/**
 * Property: under any arrival pattern a compliant sliding-window sender
 * can generate (arrivals only within W of the maximum in-flight seq,
 * arbitrary duplication and reordering within that range), PlainSeen and
 * CompactSeen return identical outcomes for every arrival.
 */
class SeenEquivalence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeenEquivalence, RandomizedSenderPatterns)
{
    Rng rng = seeded_rng("seen_window_test", GetParam());
    std::uint32_t w = 1u << rng.next_in(2, 6);  // W in {4..64}
    PlainSeen plain(w);
    CompactSeen compact(w);

    // Model a *compliant* sliding-window sender: the window base only
    // advances past sequences that were observed (ACKed) at least once;
    // arrivals (including retransmissions, arbitrarily reordered) are
    // drawn from [base, base + W). Very late duplicates from before the
    // window are injected too: both designs must call them stale.
    const int kSteps = 20000;
    std::vector<bool> delivered(kSteps + 2 * w, false);
    Seq base = 0;
    Seq max_obs = 0;
    bool any_obs = false;
    for (int step = 0; step < kSteps; ++step) {
        while (delivered[base] && rng.chance(0.5))
            ++base;  // ACKs slide the window forward

        Seq s;
        if (rng.chance(0.03) && any_obs && max_obs >= w) {
            // A packet delayed from long ago: guaranteed stale.
            s = static_cast<Seq>(rng.next_in(0, max_obs - w));
            SeenOutcome a = plain.observe(s);
            SeenOutcome b = compact.observe(s);
            ASSERT_EQ(a, SeenOutcome::kStale);
            ASSERT_EQ(b, SeenOutcome::kStale);
            continue;
        }
        s = static_cast<Seq>(rng.next_in(base, base + w - 1));
        SeenOutcome a = plain.observe(s);
        SeenOutcome b = compact.observe(s);
        ASSERT_EQ(a, b) << "divergence at step " << step << " seq " << s
                        << " W " << w;
        bool expect_dup = delivered[s];
        ASSERT_EQ(a == SeenOutcome::kDuplicate, expect_dup)
            << "wrong dedup verdict at seq " << s;
        delivered[s] = true;
        if (!any_obs || s > max_obs) {
            max_obs = s;
            any_obs = true;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeenEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(HostReceiveWindow, DedupsWithSequenceGaps)
{
    // The receiver sees only a subset of sequences (others were consumed
    // by the switch). Gaps must not cause false duplicates or misses.
    HostReceiveWindow wdw(kW);
    EXPECT_EQ(wdw.observe(3), SeenOutcome::kFresh);
    EXPECT_EQ(wdw.observe(7), SeenOutcome::kFresh);
    EXPECT_EQ(wdw.observe(3), SeenOutcome::kDuplicate);
    // Sequence 3 + 2W lands on the same ring slot: must still be fresh.
    EXPECT_EQ(wdw.observe(3 + 2 * kW), SeenOutcome::kFresh);
}

TEST(HostReceiveWindow, StaleRejected)
{
    HostReceiveWindow wdw(kW);
    wdw.observe(100);
    EXPECT_EQ(wdw.observe(100 - kW), SeenOutcome::kStale);
    EXPECT_EQ(wdw.observe(101 - kW), SeenOutcome::kFresh);
}

TEST(HostReceiveWindow, RandomizedSubsetDelivery)
{
    // Property: with arbitrary subsets and duplicates within the window,
    // the window reports kFresh exactly once per sequence.
    Rng rng = seeded_rng("seen_window_test", 99);
    HostReceiveWindow wdw(64);
    std::vector<int> fresh_count(5000, 0);
    Seq base = 0;
    for (int step = 0; step < 30000; ++step) {
        if (rng.chance(0.2) && base + 64 < 5000)
            ++base;
        Seq s = static_cast<Seq>(rng.next_in(base, base + 63));
        if (wdw.observe(s) == SeenOutcome::kFresh)
            ++fresh_count[s];
    }
    for (std::size_t s = 0; s < fresh_count.size(); ++s)
        EXPECT_LE(fresh_count[s], 1) << "seq " << s << " fresh twice";
}

// ---------------------------------------------------------------------------
// Edge cases: wraparound, window-full backpressure, wipe + fence repair
// ---------------------------------------------------------------------------

TEST(SeenWindowEdge, OperatesNearSequenceNumberCeiling)
{
    // Seq is 32-bit but the staleness comparison is done in 64-bit, so
    // windows near the top of the range must behave exactly like
    // windows near zero: fresh once, duplicate after, stale below the
    // window — no overflow in `s + W`.
    // A window can't *start* cold at an arbitrary sequence (the compact
    // design's zeroed construction state is only valid at seq 0); the
    // fence repair is the documented way to establish one mid-stream.
    const Seq top = 0xffffffffu;
    const Seq start = top - 3 * kW;
    for (int design = 0; design < 2; ++design) {
        PlainSeen plain(kW);
        CompactSeen compact(kW);
        plain.repair(start);
        compact.repair(start);
        auto observe = [&](Seq s) {
            return design == 0 ? plain.observe(s) : compact.observe(s);
        };
        for (Seq s = start; s < top; ++s)
            EXPECT_EQ(observe(s), SeenOutcome::kFresh) << "seq " << s;
        EXPECT_EQ(observe(top), SeenOutcome::kFresh);
        EXPECT_EQ(observe(top), SeenOutcome::kDuplicate);
        EXPECT_EQ(observe(top - kW + 1), SeenOutcome::kDuplicate);
        EXPECT_EQ(observe(top - kW), SeenOutcome::kStale);
    }
}

TEST(SeenWindowEdge, HostWindowNearSequenceNumberCeiling)
{
    HostReceiveWindow wdw(kW);
    const Seq top = 0xffffffffu;
    EXPECT_EQ(wdw.observe(top - 1), SeenOutcome::kFresh);
    EXPECT_EQ(wdw.observe(top), SeenOutcome::kFresh);
    EXPECT_EQ(wdw.observe(top - 1), SeenOutcome::kDuplicate);
    EXPECT_EQ(wdw.observe(top - kW), SeenOutcome::kStale);
}

TEST(SeenWindowEdge, WindowFullAdvanceExpiresUnackedSequence)
{
    // Why the sender must stall when its window is full: if it slid
    // anyway, the oldest outstanding (un-ACKed) sequence would fall
    // below the window and its retransmission would be dropped as
    // stale — silently losing the tuple. Both designs agree.
    PlainSeen plain(kW);
    CompactSeen compact(kW);
    // Fill the window without ACK progress: W outstanding sequences.
    for (Seq s = 0; s < kW; ++s) {
        EXPECT_EQ(plain.observe(s), SeenOutcome::kFresh);
        EXPECT_EQ(compact.observe(s), SeenOutcome::kFresh);
    }
    // Every outstanding sequence is still retransmittable (duplicate,
    // not stale) while the window holds.
    EXPECT_EQ(plain.observe(0), SeenOutcome::kDuplicate);
    EXPECT_EQ(compact.observe(0), SeenOutcome::kDuplicate);
    // A non-compliant send past the full window expires seq 0.
    EXPECT_EQ(plain.observe(kW), SeenOutcome::kFresh);
    EXPECT_EQ(compact.observe(kW), SeenOutcome::kFresh);
    EXPECT_EQ(plain.observe(0), SeenOutcome::kStale);
    EXPECT_EQ(compact.observe(0), SeenOutcome::kStale);
}

TEST(SeenWindowEdge, RepairAfterMidWindowWipe)
{
    // Crash model: the switch reboots mid-window and every register
    // reads zero. The fence (AskSwitchProgram::fence_channel) repairs
    // the window at the sender's next sequence — which is generally
    // *mid-segment*, so the compact design's parity must be pre-set for
    // the admitted range (a wiped 0 in an odd segment would misread as
    // "already observed" and falsely dedup a fresh packet).
    for (std::uint32_t offset : {0u, 1u, kW / 2, kW - 1}) {
        PlainSeen plain(kW);
        CompactSeen compact(kW);
        // Progress into the third segment so parity state is nontrivial,
        // stopping at an arbitrary offset within the segment.
        Seq next = 2 * kW + offset;
        for (Seq s = 0; s < next; ++s) {
            plain.observe(s);
            compact.observe(s);
        }

        plain.wipe();
        compact.wipe();
        plain.repair(next);
        compact.repair(next);

        // Pre-crash sequences replayed by in-flight frames: stale.
        EXPECT_EQ(plain.observe(next - 1), SeenOutcome::kStale);
        EXPECT_EQ(compact.observe(next - 1), SeenOutcome::kStale);
        EXPECT_EQ(plain.observe(0), SeenOutcome::kStale);
        EXPECT_EQ(compact.observe(0), SeenOutcome::kStale);

        // The whole admitted window: fresh exactly once, then
        // duplicate, in both designs — this is the parity repair.
        for (Seq s = next; s < next + kW; ++s) {
            EXPECT_EQ(plain.observe(s), SeenOutcome::kFresh)
                << "offset " << offset << " seq " << s;
            EXPECT_EQ(compact.observe(s), SeenOutcome::kFresh)
                << "offset " << offset << " seq " << s;
            EXPECT_EQ(plain.observe(s), SeenOutcome::kDuplicate);
            EXPECT_EQ(compact.observe(s), SeenOutcome::kDuplicate);
        }
    }
}

TEST(SeenWindowEdge, WipeWithoutRepairLosesDedupState)
{
    // The negative control for the fence: a bare wipe (no repair) makes
    // the window forget everything — a replayed pre-crash frame would
    // be re-admitted and double-aggregated. This is exactly the bug the
    // fence exists to prevent.
    PlainSeen plain(kW);
    plain.observe(5);
    plain.wipe();
    EXPECT_EQ(plain.observe(5), SeenOutcome::kFresh);  // double-count!
}

}  // namespace
}  // namespace ask::core
