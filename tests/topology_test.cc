/**
 * Topology and strong-id tests: the TopologyBuilder's validation, the
 * host/rack index arithmetic the fabric wiring depends on, and the
 * compile-time separation of HostId / SwitchId / RackId.
 */
#include <gtest/gtest.h>

#include <type_traits>

#include "ask/topology.h"
#include "ask/types.h"
#include "common/logging.h"

namespace ask::core {
namespace {

// The whole point of the strong ids: they never cross-convert. The raw
// integer still converts in (back-compat shim), but one id type cannot
// flow into another.
static_assert(std::is_convertible_v<std::uint32_t, HostId>);
static_assert(!std::is_convertible_v<HostId, SwitchId>);
static_assert(!std::is_convertible_v<SwitchId, HostId>);
static_assert(!std::is_convertible_v<RackId, HostId>);
static_assert(!std::is_convertible_v<HostId, RackId>);
static_assert(!std::is_convertible_v<SwitchId, RackId>);
// The escape hatch back to an integer is explicit only.
static_assert(!std::is_convertible_v<HostId, std::uint32_t>);
static_assert(std::is_constructible_v<std::uint32_t, HostId>);

TEST(StrongId, ValueAndComparisons)
{
    HostId a{3};
    HostId b = 3;  // implicit raw construction (deprecated shim)
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.value(), 3u);
    EXPECT_LT(HostId{2}, a);
    EXPECT_NE(HostId{0}, a);
}

TEST(Topology, SingleRackHasNoTier)
{
    Topology t = TopologyBuilder().add_rack(4).build();
    EXPECT_EQ(t.num_racks(), 1u);
    EXPECT_EQ(t.num_hosts(), 4u);
    EXPECT_FALSE(t.has_tier());
    EXPECT_EQ(t.num_switches(), 1u);
    EXPECT_EQ(t.rack_of_host(HostId{3}), RackId{0});
    EXPECT_EQ(t.host_lo(RackId{0}), 0u);
}

TEST(Topology, MultiRackIndexing)
{
    // Uneven racks: 2 + 3 + 1 hosts.
    Topology t = TopologyBuilder().add_rack(2).add_rack(3).add_rack(1).build();
    EXPECT_EQ(t.num_racks(), 3u);
    EXPECT_EQ(t.num_hosts(), 6u);
    EXPECT_TRUE(t.has_tier());
    EXPECT_EQ(t.num_switches(), 4u);
    EXPECT_EQ(t.tier_switch(), SwitchId{3});

    EXPECT_EQ(t.rack_of_host(HostId{0}), RackId{0});
    EXPECT_EQ(t.rack_of_host(HostId{1}), RackId{0});
    EXPECT_EQ(t.rack_of_host(HostId{2}), RackId{1});
    EXPECT_EQ(t.rack_of_host(HostId{4}), RackId{1});
    EXPECT_EQ(t.rack_of_host(HostId{5}), RackId{2});

    EXPECT_EQ(t.host_lo(RackId{0}), 0u);
    EXPECT_EQ(t.host_lo(RackId{1}), 2u);
    EXPECT_EQ(t.host_lo(RackId{2}), 5u);
    EXPECT_EQ(t.hosts_in(RackId{1}), 3u);
}

TEST(Topology, RacksShorthandAndTierKnobs)
{
    Topology t = TopologyBuilder()
                     .racks(4, 2)
                     .tier_link(/*gbps=*/200.0, /*propagation_ns=*/1500)
                     .build();
    EXPECT_EQ(t.num_racks(), 4u);
    EXPECT_EQ(t.num_hosts(), 8u);
    EXPECT_DOUBLE_EQ(t.tier_link_gbps, 200.0);
    EXPECT_EQ(t.tier_link_propagation_ns, 1500);
}

TEST(Topology, BuilderRejectsInconsistentShapes)
{
    EXPECT_THROW(TopologyBuilder().build(), ConfigError);  // no racks
    EXPECT_THROW(TopologyBuilder().add_rack(0).build(),
                 ConfigError);  // empty rack
    EXPECT_THROW(TopologyBuilder().add_rack(2).tier_link(0.0, 100).build(),
                 ConfigError);  // dead uplink
}

}  // namespace
}  // namespace ask::core
