# Empty compiler generated dependencies file for fig13a_overhead.
# This may be replaced when dependencies are built.
