# Empty dependencies file for fig11_tct.
# This may be replaced when dependencies are built.
