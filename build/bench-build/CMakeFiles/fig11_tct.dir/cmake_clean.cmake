file(REMOVE_RECURSE
  "../bench/fig11_tct"
  "../bench/fig11_tct.pdb"
  "CMakeFiles/fig11_tct.dir/fig11_tct.cc.o"
  "CMakeFiles/fig11_tct.dir/fig11_tct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
