# Empty dependencies file for fig07_offload.
# This may be replaced when dependencies are built.
