file(REMOVE_RECURSE
  "../bench/fig07_offload"
  "../bench/fig07_offload.pdb"
  "CMakeFiles/fig07_offload.dir/fig07_offload.cc.o"
  "CMakeFiles/fig07_offload.dir/fig07_offload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
