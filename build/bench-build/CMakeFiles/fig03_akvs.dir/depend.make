# Empty dependencies file for fig03_akvs.
# This may be replaced when dependencies are built.
