file(REMOVE_RECURSE
  "../bench/fig03_akvs"
  "../bench/fig03_akvs.pdb"
  "CMakeFiles/fig03_akvs.dir/fig03_akvs.cc.o"
  "CMakeFiles/fig03_akvs.dir/fig03_akvs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_akvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
