# Empty dependencies file for fig08b_packing.
# This may be replaced when dependencies are built.
