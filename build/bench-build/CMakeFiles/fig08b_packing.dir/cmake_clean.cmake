file(REMOVE_RECURSE
  "../bench/fig08b_packing"
  "../bench/fig08b_packing.pdb"
  "CMakeFiles/fig08b_packing.dir/fig08b_packing.cc.o"
  "CMakeFiles/fig08b_packing.dir/fig08b_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
