file(REMOVE_RECURSE
  "../bench/fig13b_scalability"
  "../bench/fig13b_scalability.pdb"
  "CMakeFiles/fig13b_scalability.dir/fig13b_scalability.cc.o"
  "CMakeFiles/fig13b_scalability.dir/fig13b_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
