# Empty compiler generated dependencies file for fig13b_scalability.
# This may be replaced when dependencies are built.
