file(REMOVE_RECURSE
  "../bench/fig08a_goodput"
  "../bench/fig08a_goodput.pdb"
  "CMakeFiles/fig08a_goodput.dir/fig08a_goodput.cc.o"
  "CMakeFiles/fig08a_goodput.dir/fig08a_goodput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
