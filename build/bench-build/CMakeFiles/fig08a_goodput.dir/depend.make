# Empty dependencies file for fig08a_goodput.
# This may be replaced when dependencies are built.
