
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_training.cc" "bench-build/CMakeFiles/fig12_training.dir/fig12_training.cc.o" "gcc" "bench-build/CMakeFiles/fig12_training.dir/fig12_training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ask_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ask_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ask_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ask/CMakeFiles/ask_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pisa/CMakeFiles/ask_pisa.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ask_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ask_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ask_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
