file(REMOVE_RECURSE
  "../bench/fig12_training"
  "../bench/fig12_training.pdb"
  "CMakeFiles/fig12_training.dir/fig12_training.cc.o"
  "CMakeFiles/fig12_training.dir/fig12_training.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
