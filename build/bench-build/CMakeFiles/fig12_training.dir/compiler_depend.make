# Empty compiler generated dependencies file for fig12_training.
# This may be replaced when dependencies are built.
