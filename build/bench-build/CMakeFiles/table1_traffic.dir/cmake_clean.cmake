file(REMOVE_RECURSE
  "../bench/table1_traffic"
  "../bench/table1_traffic.pdb"
  "CMakeFiles/table1_traffic.dir/table1_traffic.cc.o"
  "CMakeFiles/table1_traffic.dir/table1_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
