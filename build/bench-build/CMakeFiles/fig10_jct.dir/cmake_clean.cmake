file(REMOVE_RECURSE
  "../bench/fig10_jct"
  "../bench/fig10_jct.pdb"
  "CMakeFiles/fig10_jct.dir/fig10_jct.cc.o"
  "CMakeFiles/fig10_jct.dir/fig10_jct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_jct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
