# Empty dependencies file for fig10_jct.
# This may be replaced when dependencies are built.
