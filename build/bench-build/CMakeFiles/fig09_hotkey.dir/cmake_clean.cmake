file(REMOVE_RECURSE
  "../bench/fig09_hotkey"
  "../bench/fig09_hotkey.pdb"
  "CMakeFiles/fig09_hotkey.dir/fig09_hotkey.cc.o"
  "CMakeFiles/fig09_hotkey.dir/fig09_hotkey.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hotkey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
