# Empty compiler generated dependencies file for fig09_hotkey.
# This may be replaced when dependencies are built.
