file(REMOVE_RECURSE
  "CMakeFiles/switch_program_test.dir/switch_program_test.cc.o"
  "CMakeFiles/switch_program_test.dir/switch_program_test.cc.o.d"
  "switch_program_test"
  "switch_program_test.pdb"
  "switch_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
