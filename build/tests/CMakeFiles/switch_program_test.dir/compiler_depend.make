# Empty compiler generated dependencies file for switch_program_test.
# This may be replaced when dependencies are built.
