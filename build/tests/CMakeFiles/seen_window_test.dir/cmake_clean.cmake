file(REMOVE_RECURSE
  "CMakeFiles/seen_window_test.dir/seen_window_test.cc.o"
  "CMakeFiles/seen_window_test.dir/seen_window_test.cc.o.d"
  "seen_window_test"
  "seen_window_test.pdb"
  "seen_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seen_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
