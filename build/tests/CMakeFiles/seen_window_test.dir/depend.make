# Empty dependencies file for seen_window_test.
# This may be replaced when dependencies are built.
