# Empty dependencies file for key_space_test.
# This may be replaced when dependencies are built.
