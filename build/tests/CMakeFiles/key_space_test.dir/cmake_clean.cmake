file(REMOVE_RECURSE
  "CMakeFiles/key_space_test.dir/key_space_test.cc.o"
  "CMakeFiles/key_space_test.dir/key_space_test.cc.o.d"
  "key_space_test"
  "key_space_test.pdb"
  "key_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
