# Empty compiler generated dependencies file for multirack_test.
# This may be replaced when dependencies are built.
