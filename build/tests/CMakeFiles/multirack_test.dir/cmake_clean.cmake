file(REMOVE_RECURSE
  "CMakeFiles/multirack_test.dir/multirack_test.cc.o"
  "CMakeFiles/multirack_test.dir/multirack_test.cc.o.d"
  "multirack_test"
  "multirack_test.pdb"
  "multirack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
