# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/pisa_test[1]_include.cmake")
include("/root/repo/build/tests/seen_window_test[1]_include.cmake")
include("/root/repo/build/tests/key_space_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/packet_builder_test[1]_include.cmake")
include("/root/repo/build/tests/switch_program_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/multirack_test[1]_include.cmake")
