file(REMOVE_RECURSE
  "../examples/streaming_analytics"
  "../examples/streaming_analytics.pdb"
  "CMakeFiles/streaming_analytics.dir/streaming_analytics.cpp.o"
  "CMakeFiles/streaming_analytics.dir/streaming_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
