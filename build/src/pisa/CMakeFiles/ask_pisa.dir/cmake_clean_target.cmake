file(REMOVE_RECURSE
  "libask_pisa.a"
)
