
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pisa/pipeline.cc" "src/pisa/CMakeFiles/ask_pisa.dir/pipeline.cc.o" "gcc" "src/pisa/CMakeFiles/ask_pisa.dir/pipeline.cc.o.d"
  "/root/repo/src/pisa/pisa_switch.cc" "src/pisa/CMakeFiles/ask_pisa.dir/pisa_switch.cc.o" "gcc" "src/pisa/CMakeFiles/ask_pisa.dir/pisa_switch.cc.o.d"
  "/root/repo/src/pisa/register_array.cc" "src/pisa/CMakeFiles/ask_pisa.dir/register_array.cc.o" "gcc" "src/pisa/CMakeFiles/ask_pisa.dir/register_array.cc.o.d"
  "/root/repo/src/pisa/stage.cc" "src/pisa/CMakeFiles/ask_pisa.dir/stage.cc.o" "gcc" "src/pisa/CMakeFiles/ask_pisa.dir/stage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ask_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ask_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ask_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
