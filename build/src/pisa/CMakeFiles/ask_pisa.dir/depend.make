# Empty dependencies file for ask_pisa.
# This may be replaced when dependencies are built.
