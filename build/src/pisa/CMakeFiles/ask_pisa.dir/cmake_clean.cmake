file(REMOVE_RECURSE
  "CMakeFiles/ask_pisa.dir/pipeline.cc.o"
  "CMakeFiles/ask_pisa.dir/pipeline.cc.o.d"
  "CMakeFiles/ask_pisa.dir/pisa_switch.cc.o"
  "CMakeFiles/ask_pisa.dir/pisa_switch.cc.o.d"
  "CMakeFiles/ask_pisa.dir/register_array.cc.o"
  "CMakeFiles/ask_pisa.dir/register_array.cc.o.d"
  "CMakeFiles/ask_pisa.dir/stage.cc.o"
  "CMakeFiles/ask_pisa.dir/stage.cc.o.d"
  "libask_pisa.a"
  "libask_pisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_pisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
