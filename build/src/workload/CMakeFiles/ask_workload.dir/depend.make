# Empty dependencies file for ask_workload.
# This may be replaced when dependencies are built.
