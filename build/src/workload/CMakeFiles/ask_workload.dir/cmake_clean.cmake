file(REMOVE_RECURSE
  "CMakeFiles/ask_workload.dir/generators.cc.o"
  "CMakeFiles/ask_workload.dir/generators.cc.o.d"
  "CMakeFiles/ask_workload.dir/models.cc.o"
  "CMakeFiles/ask_workload.dir/models.cc.o.d"
  "CMakeFiles/ask_workload.dir/text_corpus.cc.o"
  "CMakeFiles/ask_workload.dir/text_corpus.cc.o.d"
  "libask_workload.a"
  "libask_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
