file(REMOVE_RECURSE
  "libask_workload.a"
)
