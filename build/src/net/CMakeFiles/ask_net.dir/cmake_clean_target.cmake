file(REMOVE_RECURSE
  "libask_net.a"
)
