file(REMOVE_RECURSE
  "CMakeFiles/ask_net.dir/cost_model.cc.o"
  "CMakeFiles/ask_net.dir/cost_model.cc.o.d"
  "CMakeFiles/ask_net.dir/fault_model.cc.o"
  "CMakeFiles/ask_net.dir/fault_model.cc.o.d"
  "CMakeFiles/ask_net.dir/link.cc.o"
  "CMakeFiles/ask_net.dir/link.cc.o.d"
  "CMakeFiles/ask_net.dir/network.cc.o"
  "CMakeFiles/ask_net.dir/network.cc.o.d"
  "CMakeFiles/ask_net.dir/packet.cc.o"
  "CMakeFiles/ask_net.dir/packet.cc.o.d"
  "libask_net.a"
  "libask_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
