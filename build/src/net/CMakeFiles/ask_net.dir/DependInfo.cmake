
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cost_model.cc" "src/net/CMakeFiles/ask_net.dir/cost_model.cc.o" "gcc" "src/net/CMakeFiles/ask_net.dir/cost_model.cc.o.d"
  "/root/repo/src/net/fault_model.cc" "src/net/CMakeFiles/ask_net.dir/fault_model.cc.o" "gcc" "src/net/CMakeFiles/ask_net.dir/fault_model.cc.o.d"
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/ask_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/ask_net.dir/link.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/ask_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/ask_net.dir/network.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/ask_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/ask_net.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ask_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ask_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
