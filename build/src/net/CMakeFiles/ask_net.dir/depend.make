# Empty dependencies file for ask_net.
# This may be replaced when dependencies are built.
