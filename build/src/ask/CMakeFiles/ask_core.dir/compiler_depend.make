# Empty compiler generated dependencies file for ask_core.
# This may be replaced when dependencies are built.
