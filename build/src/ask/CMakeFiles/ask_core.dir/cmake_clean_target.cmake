file(REMOVE_RECURSE
  "libask_core.a"
)
