file(REMOVE_RECURSE
  "CMakeFiles/ask_core.dir/cluster.cc.o"
  "CMakeFiles/ask_core.dir/cluster.cc.o.d"
  "CMakeFiles/ask_core.dir/config.cc.o"
  "CMakeFiles/ask_core.dir/config.cc.o.d"
  "CMakeFiles/ask_core.dir/controller.cc.o"
  "CMakeFiles/ask_core.dir/controller.cc.o.d"
  "CMakeFiles/ask_core.dir/daemon.cc.o"
  "CMakeFiles/ask_core.dir/daemon.cc.o.d"
  "CMakeFiles/ask_core.dir/key_space.cc.o"
  "CMakeFiles/ask_core.dir/key_space.cc.o.d"
  "CMakeFiles/ask_core.dir/packet_builder.cc.o"
  "CMakeFiles/ask_core.dir/packet_builder.cc.o.d"
  "CMakeFiles/ask_core.dir/seen_window.cc.o"
  "CMakeFiles/ask_core.dir/seen_window.cc.o.d"
  "CMakeFiles/ask_core.dir/switch_program.cc.o"
  "CMakeFiles/ask_core.dir/switch_program.cc.o.d"
  "CMakeFiles/ask_core.dir/types.cc.o"
  "CMakeFiles/ask_core.dir/types.cc.o.d"
  "CMakeFiles/ask_core.dir/wire.cc.o"
  "CMakeFiles/ask_core.dir/wire.cc.o.d"
  "libask_core.a"
  "libask_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
