
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ask/cluster.cc" "src/ask/CMakeFiles/ask_core.dir/cluster.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/cluster.cc.o.d"
  "/root/repo/src/ask/config.cc" "src/ask/CMakeFiles/ask_core.dir/config.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/config.cc.o.d"
  "/root/repo/src/ask/controller.cc" "src/ask/CMakeFiles/ask_core.dir/controller.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/controller.cc.o.d"
  "/root/repo/src/ask/daemon.cc" "src/ask/CMakeFiles/ask_core.dir/daemon.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/daemon.cc.o.d"
  "/root/repo/src/ask/key_space.cc" "src/ask/CMakeFiles/ask_core.dir/key_space.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/key_space.cc.o.d"
  "/root/repo/src/ask/packet_builder.cc" "src/ask/CMakeFiles/ask_core.dir/packet_builder.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/packet_builder.cc.o.d"
  "/root/repo/src/ask/seen_window.cc" "src/ask/CMakeFiles/ask_core.dir/seen_window.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/seen_window.cc.o.d"
  "/root/repo/src/ask/switch_program.cc" "src/ask/CMakeFiles/ask_core.dir/switch_program.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/switch_program.cc.o.d"
  "/root/repo/src/ask/types.cc" "src/ask/CMakeFiles/ask_core.dir/types.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/types.cc.o.d"
  "/root/repo/src/ask/wire.cc" "src/ask/CMakeFiles/ask_core.dir/wire.cc.o" "gcc" "src/ask/CMakeFiles/ask_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ask_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ask_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ask_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pisa/CMakeFiles/ask_pisa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
