file(REMOVE_RECURSE
  "CMakeFiles/ask_common.dir/hash.cc.o"
  "CMakeFiles/ask_common.dir/hash.cc.o.d"
  "CMakeFiles/ask_common.dir/logging.cc.o"
  "CMakeFiles/ask_common.dir/logging.cc.o.d"
  "CMakeFiles/ask_common.dir/random.cc.o"
  "CMakeFiles/ask_common.dir/random.cc.o.d"
  "CMakeFiles/ask_common.dir/stats.cc.o"
  "CMakeFiles/ask_common.dir/stats.cc.o.d"
  "CMakeFiles/ask_common.dir/string_util.cc.o"
  "CMakeFiles/ask_common.dir/string_util.cc.o.d"
  "CMakeFiles/ask_common.dir/table.cc.o"
  "CMakeFiles/ask_common.dir/table.cc.o.d"
  "libask_common.a"
  "libask_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
