file(REMOVE_RECURSE
  "libask_common.a"
)
