# Empty compiler generated dependencies file for ask_common.
# This may be replaced when dependencies are built.
