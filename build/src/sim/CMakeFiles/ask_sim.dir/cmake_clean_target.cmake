file(REMOVE_RECURSE
  "libask_sim.a"
)
