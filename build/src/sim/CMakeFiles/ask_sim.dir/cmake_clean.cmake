file(REMOVE_RECURSE
  "CMakeFiles/ask_sim.dir/simulator.cc.o"
  "CMakeFiles/ask_sim.dir/simulator.cc.o.d"
  "libask_sim.a"
  "libask_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
