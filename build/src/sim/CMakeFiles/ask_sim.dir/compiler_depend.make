# Empty compiler generated dependencies file for ask_sim.
# This may be replaced when dependencies are built.
