# Empty dependencies file for ask_apps.
# This may be replaced when dependencies are built.
