file(REMOVE_RECURSE
  "CMakeFiles/ask_apps.dir/minimr.cc.o"
  "CMakeFiles/ask_apps.dir/minimr.cc.o.d"
  "CMakeFiles/ask_apps.dir/trainsim.cc.o"
  "CMakeFiles/ask_apps.dir/trainsim.cc.o.d"
  "libask_apps.a"
  "libask_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
