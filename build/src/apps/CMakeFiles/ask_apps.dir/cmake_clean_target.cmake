file(REMOVE_RECURSE
  "libask_apps.a"
)
