file(REMOVE_RECURSE
  "CMakeFiles/ask_baselines.dir/noaggr.cc.o"
  "CMakeFiles/ask_baselines.dir/noaggr.cc.o.d"
  "CMakeFiles/ask_baselines.dir/preaggr.cc.o"
  "CMakeFiles/ask_baselines.dir/preaggr.cc.o.d"
  "CMakeFiles/ask_baselines.dir/spark_model.cc.o"
  "CMakeFiles/ask_baselines.dir/spark_model.cc.o.d"
  "CMakeFiles/ask_baselines.dir/strawman.cc.o"
  "CMakeFiles/ask_baselines.dir/strawman.cc.o.d"
  "CMakeFiles/ask_baselines.dir/sync_ina.cc.o"
  "CMakeFiles/ask_baselines.dir/sync_ina.cc.o.d"
  "libask_baselines.a"
  "libask_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ask_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
