file(REMOVE_RECURSE
  "libask_baselines.a"
)
