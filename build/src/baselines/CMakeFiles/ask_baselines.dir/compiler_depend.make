# Empty compiler generated dependencies file for ask_baselines.
# This may be replaced when dependencies are built.
